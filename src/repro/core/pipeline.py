"""High-level entry points for the distributed algorithm.

:func:`distributed_betweenness` runs the complete two-phase protocol of
the paper (Algorithms 2 + 3, with the phase-0 tree/census preamble) on
the CONGEST simulator and returns a :class:`DistributedBCResult`
bundling the per-node betweenness values, the learned diameter, the BFS
start times, and the full traffic statistics.

:func:`distributed_apsp` and :func:`distributed_closeness` reuse the
counting phase only: after Algorithm 2 every node holds its complete
row of the distance matrix, from which closeness and graph centrality
follow with *zero* extra communication — the O(N)-round centrality
computations the paper's introduction attributes to the APSP results of
[6], [7], [8].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.arithmetic.context import (
    ArithmeticContext,
    ExactContext,
    make_context,
)
from repro.congest.simulator import DEFAULT_CONGEST_FACTOR, Simulator
from repro.congest.stats import SimulationStats
from repro.core.config import UNIT_STRESS, ProtocolConfig
from repro.core.node import BetweennessNode, make_node_factory
from repro.exceptions import ProtocolError, SimulationStalledError
from repro.graphs.graph import Graph
from repro.graphs.properties import require_connected

ModeSpec = Union[str, ArithmeticContext]


@dataclass(frozen=True)
class CompletenessReport:
    """Per-source completeness of a (possibly faulted) run.

    A source s is *complete* when every node v != s executed its
    scheduled Algorithm 3 send for s — at which point psi_s(v), and
    hence delta_s·(v), is final everywhere.  A clean run is complete
    for every source; a run cut short by
    :class:`~repro.exceptions.SimulationStalledError` degrades to the
    bounded-partial betweenness over ``complete_sources`` only (exact
    for that subset) instead of returning silently wrong totals.
    """

    #: True iff every expected source is complete (clean runs).
    complete: bool
    #: Sources whose dependencies are final at every node.
    complete_sources: Tuple[int, ...]
    #: Expected sources the run lost (their contribution is missing).
    affected_sources: Tuple[int, ...]
    #: Nodes that had not terminated when the run ended.
    unfinished_nodes: Tuple[int, ...]
    #: Nodes inside a crash window when the run ended.
    crashed_nodes: Tuple[int, ...]
    #: Round at which the stall detector ended the run (None if clean).
    stalled_round: Optional[int]

    @property
    def coverage(self) -> float:
        """Fraction of expected sources that completed (1.0 if clean)."""
        total = len(self.complete_sources) + len(self.affected_sources)
        if total == 0:
            return 1.0
        return len(self.complete_sources) / total


@dataclass
class DistributedBCResult:
    """Everything a run of the distributed algorithm produced.

    Attributes
    ----------
    betweenness:
        ``node -> CB(node)`` as floats (undirected convention: each
        unordered pair counted once, matching the paper's Figure 1).
    betweenness_exact:
        Exact rationals when the run used exact arithmetic, else None.
    diameter:
        The network diameter D computed by the protocol itself (None
        only for a partial result whose run stalled before the
        diameter broadcast).
    start_times:
        ``s -> T_s``: the global round at which s's BFS launched.
    rounds:
        Total synchronous rounds until every node terminated.
    stats:
        Full traffic statistics (bits, per-edge maxima, optional cut).
    arithmetic:
        Name of the arithmetic context used.
    root:
        The BFS(u0)/DFS root node u0.
    """

    graph: Graph
    betweenness: Dict[int, float]
    betweenness_exact: Optional[Dict[int, Fraction]]
    diameter: Optional[int]
    start_times: Dict[int, int]
    rounds: int
    stats: SimulationStats
    arithmetic: str
    root: int
    nodes: List[BetweennessNode] = field(repr=False, default_factory=list)
    #: per-source completeness; ``completeness.complete`` is False only
    #: for partial results recovered from a stalled faulted run.
    completeness: Optional[CompletenessReport] = None
    #: registry name of the protocol that produced this result (see
    #: :mod:`repro.protocols`); stamped into telemetry metadata and
    #: history run keys.
    protocol: str = "hua-bc"

    def normalized(self) -> Dict[int, float]:
        """Betweenness divided by (N-1)(N-2)/2."""
        n = self.graph.num_nodes
        pairs = (n - 1) * (n - 2) / 2.0
        if pairs <= 0:
            return {v: 0.0 for v in self.betweenness}
        return {v: value / pairs for v, value in self.betweenness.items()}

    def _node_index(self) -> Dict[int, BetweennessNode]:
        """``node_id -> node`` map, built once on first use.

        Accessors like :meth:`dependency` are often called in O(N^2)
        loops (one query per pair); a linear scan per call would make
        them quadratic in aggregate.
        """
        index = self.__dict__.get("_nodes_by_id")
        if index is None:
            index = {node.node_id: node for node in self.nodes}
            self.__dict__["_nodes_by_id"] = index
        return index

    def distances(self) -> Dict[int, Dict[int, int]]:
        """The full APSP matrix: ``v -> {s: d(s, v)}`` from node ledgers."""
        return {
            v: node.ledger.distances()
            for v, node in self._node_index().items()
        }

    def dependency(self, source: int, node: int):
        """delta_{source·}(node) as computed by the protocol."""
        candidate = self._node_index().get(node)
        if candidate is None:
            raise KeyError(node)
        return candidate.aggregation.dependencies().get(source)


def distributed_betweenness(
    graph: Graph,
    arithmetic: ModeSpec = "lfloat",
    root: Optional[int] = 0,
    strict: bool = True,
    congest_factor: int = DEFAULT_CONGEST_FACTOR,
    cut=None,
    config: Optional[ProtocolConfig] = None,
    tracer=None,
    telemetry=None,
    engine: str = "auto",
    frame_audit: bool = False,
    faults=None,
    resilient: bool = False,
    protocol=None,
    workers: int = 1,
    partitioner: str = "greedy",
    supervision=None,
    checkpoint_every: int = 0,
    checkpoint_dir=None,
    max_restarts: int = 0,
    heartbeat_timeout: Optional[float] = None,
    resume_from=None,
) -> DistributedBCResult:
    """Compute every node's betweenness with the paper's algorithm.

    Parameters
    ----------
    graph:
        Undirected, unweighted, **connected** graph.
    arithmetic:
        ``"exact"`` for arbitrary-precision reference arithmetic (may
        violate CONGEST on shortest-path-count-heavy graphs — the
        paper's "Large Value Challenge"), ``"lfloat"`` for the Section
        VI floating point with an automatically chosen L, ``"lfloat-<L>"``
        for an explicit L, or a ready :class:`ArithmeticContext`.
    root:
        The vertex u0 hosting the global BFS tree and the DFS token
        (the paper picks it at random; any vertex is correct).  Pass
        ``None`` to elect the root inside the model via the O(D)-round
        minimum-id leader election
        (:func:`repro.congest.primitives.elect_root`); the election's
        rounds are *not* included in ``result.rounds``.
    strict, congest_factor:
        Per-edge bandwidth enforcement, see
        :class:`~repro.congest.simulator.Simulator`.
    cut:
        Optional node set for cut-traffic accounting (Section IX
        experiments).
    config:
        Advanced protocol knobs (source/target subsets, stress unit,
        counting-only); defaults to the paper's exact algorithm.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` (duck-typed —
        this module does not import ``repro.obs``).  Wired into the
        simulator (metrics, monitors, profiling) and the root node
        (protocol-state phase marks); after the run its
        ``finalize_run(result)`` hook fires so post-run monitors (the
        Theorem 1 error check) can judge the collected result.
    engine:
        Simulator execution engine.  ``"auto"`` (default) resolves to
        the fastest capable backend via
        :mod:`repro.engines.dispatcher`: the vectorized ``"bulk"``
        engine when numpy is available and the run fits its envelope,
        else ``"event"``.  ``"event"`` steps only active nodes;
        ``"sweep"`` steps every node every round (the assumption-free
        reference); ``"bulk"`` executes whole rounds as numpy array
        ops.  All engines produce bit-identical results (the
        differential suite enforces it); explicit ``"bulk"`` raises
        :class:`~repro.exceptions.EngineCapabilityError` outside its
        envelope.  The resolved name is reported in
        ``result.stats`` consumers via ``Simulator.engine``.
    frame_audit:
        When True, every per-edge per-round frame is materialized
        through the :mod:`repro.wire` codec and length-checked against
        the billed bits (see
        :class:`~repro.congest.simulator.Simulator`).  Incompatible
        with ``resilient`` (transport envelopes are honestly sized but
        unregistered in the 4-bit tag space).
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` (or pre-built
        :class:`~repro.faults.injector.FaultInjector`) subjecting the
        run to message drop/duplication/delay/corruption, crash windows
        and link outages.  ``None`` (the default) is a zero-cost fast
        path producing output bit-identical to a faultless build.  A
        run the stall detector cuts short returns a **partial** result:
        betweenness restricted to the sources named complete in
        ``result.completeness`` (exact for that subset) instead of
        raising.
    resilient:
        Run every node behind the ack/retransmit transport
        (:class:`~repro.faults.transport.ResilientNode`).  Under any
        recoverable fault plan the recovered betweenness is exactly the
        fault-free answer.  When ``congest_factor`` is left at its
        default it is raised to
        :data:`~repro.faults.transport.RESILIENT_CONGEST_FACTOR` to
        fund the transport's constant per-edge overhead.
    protocol:
        Registered protocol name (or
        :class:`~repro.protocols.Protocol` descriptor) to run:
        ``"hua-bc"`` (the paper's Algorithms 2–3, the default) or any
        rival registered in :mod:`repro.protocols` (e.g. ``"cfp-bc"``).
        The descriptor supplies the node factory, the engine capability
        flags and the result extractor; the chosen name is recorded in
        ``result.protocol``.
    workers:
        Worker-process count for ``engine="shard"`` — the node set is
        partitioned across processes and only cross-shard traffic
        crosses process boundaries (as encoded wire frames), so rounds,
        bits, messages and betweenness stay bit-identical to the
        single-process engines.  Ignored by every other engine;
        ``"auto"`` never resolves to the sharded runtime.  See
        ``docs/sharding.md``.
    partitioner:
        Shard partitioning strategy (``"greedy"`` or ``"block"``); see
        :mod:`repro.shard.partition`.
    supervision:
        A :class:`repro.shard.supervisor.SupervisionConfig` making the
        shard coordinator supervise its workers: heartbeat watchdog,
        respawn-with-rollback on dead/hung workers, round-boundary
        checkpoints, resume.  Requires ``engine="shard"``.  Supervision
        never changes any output — a recovered or resumed run is
        bit-identical to an uninterrupted one.  See
        ``docs/recovery.md``.
    checkpoint_every, checkpoint_dir, max_restarts, heartbeat_timeout,
    resume_from:
        Scalar shorthands assembled into a ``SupervisionConfig`` when
        ``supervision`` is not given (all off by default).  A run
        paused by ``SupervisionConfig.stop_after`` raises
        :class:`~repro.exceptions.CheckpointPause`.

    Returns
    -------
    DistributedBCResult

    Examples
    --------
    >>> from repro.graphs import figure1_graph
    >>> result = distributed_betweenness(figure1_graph(), arithmetic="exact")
    >>> result.betweenness_exact[1]
    Fraction(7, 2)
    >>> result.diameter
    3
    """
    require_connected(graph)
    if root is None:
        from repro.congest.primitives import elect_root

        root, _election_rounds = elect_root(
            graph, strict=strict, congest_factor=congest_factor
        )
    if not graph.has_node(root):
        raise KeyError(root)
    ctx = make_context(arithmetic, graph.num_nodes)
    config = config or ProtocolConfig()
    injector = None
    if faults is not None:
        from repro.faults.injector import FaultInjector

        if hasattr(faults, "deliveries"):
            injector = faults
            if injector.arith is None:
                injector.arith = ctx
            if injector.tracer is None:
                injector.tracer = tracer
        else:
            injector = FaultInjector(faults, arith=ctx, tracer=tracer)
    from repro.protocols import get_protocol

    proto = get_protocol(protocol)
    node_factory = proto.build_factory(
        root, ctx, config=config, telemetry=telemetry
    )
    if resilient:
        if not proto.fault_wrappable:
            raise ProtocolError(
                "protocol {!r} opted out of the resilient transport "
                "(fault_wrappable=False)".format(proto.name)
            )
        from repro.faults.transport import (
            RESILIENT_CONGEST_FACTOR,
            make_resilient_factory,
        )

        node_factory = make_resilient_factory(node_factory)
        if congest_factor == DEFAULT_CONGEST_FACTOR:
            congest_factor = RESILIENT_CONGEST_FACTOR
    simulator = Simulator(
        graph,
        node_factory,
        strict=strict,
        congest_factor=congest_factor,
        cut=cut,
        tracer=tracer,
        telemetry=telemetry,
        engine=engine,
        frame_audit=frame_audit,
        faults=injector,
        protocol=proto,
        workers=workers,
        partitioner=partitioner,
        supervision=supervision,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        max_restarts=max_restarts,
        heartbeat_timeout=heartbeat_timeout,
        resume_from=resume_from,
    )
    try:
        stats = simulator.run()
    except SimulationStalledError as stall:
        nodes = _protocol_nodes(simulator, resilient, proto.node_class)
        result = _collect_partial(
            graph, nodes, simulator.stats, ctx, root, stall,
            protocol=proto.name,
        )
        if telemetry is not None:
            telemetry.finalize_run(result)
        return result
    nodes = _protocol_nodes(simulator, resilient, proto.node_class)
    if proto.extract is not None:
        result = proto.extract(simulator, graph, ctx, root)
    else:
        result = _collect(graph, nodes, stats, ctx, root, protocol=proto.name)
    if telemetry is not None:
        telemetry.finalize_run(result)
    return result


def _protocol_nodes(
    simulator: Simulator, resilient: bool, node_class=BetweennessNode
) -> List[BetweennessNode]:
    """The protocol nodes of a run, unwrapped from any transport."""
    raw = simulator.nodes
    if resilient:
        raw = [getattr(node, "inner", node) for node in raw]
    return [node for node in raw if isinstance(node, node_class)]


def _collect(
    graph: Graph,
    nodes: List[BetweennessNode],
    stats: SimulationStats,
    ctx: ArithmeticContext,
    root: int,
    protocol: str = "hua-bc",
) -> DistributedBCResult:
    exact = isinstance(ctx, ExactContext)
    betweenness: Dict[int, float] = {}
    betweenness_exact: Optional[Dict[int, Fraction]] = {} if exact else None
    diameter: Optional[int] = None
    start_times: Dict[int, int] = {}
    for node in nodes:
        raw = node.betweenness_raw
        if exact:
            value = Fraction(raw) / 2
            betweenness_exact[node.node_id] = value
            betweenness[node.node_id] = float(value)
        else:
            betweenness[node.node_id] = ctx.to_float(raw) / 2.0
        if node.diameter is not None:
            if diameter is not None and diameter != node.diameter:
                raise ProtocolError(
                    "nodes disagree on the diameter: {} vs {}".format(
                        diameter, node.diameter
                    )
                )
            diameter = node.diameter
        if node.counting.own_start_time is not None:
            start_times[node.node_id] = node.counting.own_start_time
        elif node.config.is_source(node.node_id):
            raise ProtocolError(
                "node {} never started its BFS".format(node.node_id)
            )
    if diameter is None:
        raise ProtocolError("no node learned the diameter")
    completeness = CompletenessReport(
        complete=True,
        complete_sources=tuple(sorted(start_times)),
        affected_sources=(),
        unfinished_nodes=(),
        crashed_nodes=(),
        stalled_round=None,
    )
    return DistributedBCResult(
        graph=graph,
        betweenness=betweenness,
        betweenness_exact=betweenness_exact,
        diameter=diameter,
        start_times=start_times,
        rounds=stats.rounds,
        stats=stats,
        arithmetic=ctx.name,
        root=root,
        nodes=nodes,
        completeness=completeness,
        protocol=protocol,
    )


def _collect_partial(
    graph: Graph,
    nodes: List[BetweennessNode],
    stats: SimulationStats,
    ctx: ArithmeticContext,
    root: int,
    stall: SimulationStalledError,
    protocol: str = "hua-bc",
) -> DistributedBCResult:
    """Graceful degradation: the bounded-partial result of a stalled run.

    A source counts as complete only when **every** other node executed
    its scheduled aggregation send for it; summing dependencies over
    that subset is exact for the subset (the per-source telescoping is
    independent), so the returned betweenness is a true lower-coverage
    answer rather than a silently wrong total.  The guarantee is sharp
    under the resilient transport (whose fence gating makes "sent"
    imply "psi final"); for raw runs under lossy plans it is
    best-effort — see ``docs/fault-model.md``.
    """
    exact = isinstance(ctx, ExactContext)
    stats.rounds = stall.round_number
    expected = sorted(
        node.node_id
        for node in nodes
        if node.config.is_source(node.node_id)
    )
    sent_by_node = {node.node_id: node.sent_sources() for node in nodes}
    complete = [
        source
        for source in expected
        if all(
            source in sent
            for owner, sent in sent_by_node.items()
            if owner != source
        )
    ]
    complete_set = frozenset(complete)
    betweenness: Dict[int, float] = {}
    betweenness_exact: Optional[Dict[int, Fraction]] = {} if exact else None
    diameter: Optional[int] = None
    start_times: Dict[int, int] = {}
    for node in nodes:
        raw = node.partial_betweenness_raw(complete_set)
        if exact:
            value = Fraction(raw) / 2
            betweenness_exact[node.node_id] = value
            betweenness[node.node_id] = float(value)
        else:
            betweenness[node.node_id] = ctx.to_float(raw) / 2.0
        if diameter is None and node.diameter is not None:
            diameter = node.diameter
        if node.counting.own_start_time is not None:
            start_times[node.node_id] = node.counting.own_start_time
    completeness = CompletenessReport(
        complete=False,
        complete_sources=tuple(complete),
        affected_sources=tuple(
            source for source in expected if source not in complete_set
        ),
        unfinished_nodes=stall.pending_nodes,
        crashed_nodes=stall.crashed_nodes,
        stalled_round=stall.round_number,
    )
    return DistributedBCResult(
        graph=graph,
        betweenness=betweenness,
        betweenness_exact=betweenness_exact,
        diameter=diameter,
        start_times=start_times,
        rounds=stats.rounds,
        stats=stats,
        arithmetic=ctx.name,
        root=root,
        nodes=nodes,
        completeness=completeness,
        protocol=protocol,
    )


# ----------------------------------------------------------------------
# counting-phase-only byproducts
# ----------------------------------------------------------------------
@dataclass
class DistributedAPSPResult:
    """Output of the counting phase: per-node distance rows and stats."""

    graph: Graph
    distances: Dict[int, Dict[int, int]]
    diameter: int
    rounds: int
    stats: SimulationStats

    def closeness(self) -> Dict[int, float]:
        """CC(v) = 1 / sum_s d(s, v), computed locally per node (Eq. 1)."""
        out = {}
        for v, row in self.distances.items():
            total = sum(row.values())
            out[v] = 1.0 / total if total else 0.0
        return out

    def graph_centrality(self) -> Dict[int, float]:
        """CG(v) = 1 / max_s d(s, v), computed locally per node (Eq. 2)."""
        out = {}
        for v, row in self.distances.items():
            ecc = max(row.values()) if row else 0
            out[v] = 1.0 / ecc if ecc else 0.0
        return out

    def eccentricities(self) -> Dict[int, int]:
        """ecc(v) per node."""
        return {
            v: max(row.values()) if row else 0
            for v, row in self.distances.items()
        }


def distributed_apsp(
    graph: Graph,
    root: int = 0,
    strict: bool = True,
    congest_factor: int = DEFAULT_CONGEST_FACTOR,
    engine: str = "auto",
    **kwargs,
) -> DistributedAPSPResult:
    """Run Algorithm 2 alone (the Holzer–Wattenhofer-style APSP core).

    The aggregation phase is skipped: nodes terminate as soon as the
    completion broadcast reaches them, so the round count reflects the
    counting phase plus O(D) control rounds.  Remaining keyword
    arguments (``telemetry``, ``frame_audit``, ...) are forwarded to
    :func:`distributed_betweenness`.
    """
    result = distributed_betweenness(
        graph,
        arithmetic="exact",
        root=root,
        strict=strict,
        congest_factor=congest_factor,
        config=ProtocolConfig(aggregate=False),
        engine=engine,
        **kwargs,
    )
    return DistributedAPSPResult(
        graph=graph,
        distances=result.distances(),
        diameter=result.diameter,
        rounds=result.rounds,
        stats=result.stats,
    )


def distributed_closeness(
    graph: Graph, root: int = 0, **kwargs
) -> Dict[int, float]:
    """Distributed closeness centrality (Eq. 1) in O(N) rounds."""
    return distributed_apsp(graph, root=root, **kwargs).closeness()


def distributed_graph_centrality(
    graph: Graph, root: int = 0, **kwargs
) -> Dict[int, float]:
    """Distributed graph centrality (Eq. 2) in O(N) rounds."""
    return distributed_apsp(graph, root=root, **kwargs).graph_centrality()


# ----------------------------------------------------------------------
# protocol-family variants (footnote 3 and related-work directions)
# ----------------------------------------------------------------------
def distributed_stress(
    graph: Graph,
    arithmetic: ModeSpec = "exact",
    root: int = 0,
    **kwargs,
) -> "DistributedStressResult":
    """Distributed stress centrality (Eq. 3) in O(N) rounds.

    Footnote 3 of the paper: "the stress centrality can also be
    computed in a similar way".  The aggregation recursion runs with
    unit term 1 instead of 1/sigma, so ``psi_s(v)`` counts shortest-path
    continuations and ``sigma_sv * psi_s(v)`` is the number of shortest
    paths through v.  With exact arithmetic (the default) the output is
    exactly integral.

    Note that stress counts, like sigma, can be exponential; L-float
    arithmetic is supported for CONGEST-tight runs at the usual O(2^-L)
    relative error.
    """
    result = distributed_betweenness(
        graph,
        arithmetic=arithmetic,
        root=root,
        config=ProtocolConfig(unit=UNIT_STRESS),
        **kwargs,
    )
    if result.betweenness_exact is not None:
        stress = {v: int(value) for v, value in result.betweenness_exact.items()}
    else:
        stress = {v: value for v, value in result.betweenness.items()}
    return DistributedStressResult(
        graph=graph,
        stress=stress,
        diameter=result.diameter,
        rounds=result.rounds,
        stats=result.stats,
        arithmetic=result.arithmetic,
    )


@dataclass
class DistributedStressResult:
    """Output of :func:`distributed_stress`."""

    graph: Graph
    #: node -> CS(node); exact ints under exact arithmetic.
    stress: Dict[int, Union[int, float]]
    diameter: int
    rounds: int
    stats: SimulationStats
    arithmetic: str


@dataclass
class SampledBCResult:
    """Output of :func:`distributed_sampled_betweenness`."""

    graph: Graph
    #: node -> extrapolated betweenness estimate (N/k scaling applied).
    estimate: Dict[int, float]
    pivots: Tuple[int, ...]
    diameter_bound: int
    rounds: int
    stats: SimulationStats
    arithmetic: str


def distributed_sampled_betweenness(
    graph: Graph,
    num_samples: int,
    seed: int = 0,
    arithmetic: ModeSpec = "lfloat",
    root: int = 0,
    telemetry=None,
    **kwargs,
) -> SampledBCResult:
    """Approximate distributed BC from a sampled pivot set.

    The distributed analogue of Brandes–Pich sampling (and of the
    approach sketched in Holzer's thesis [15]): only ``num_samples``
    pivot nodes root a BFS in the counting phase, the aggregation runs
    over those sources alone, and each node extrapolates
    ``CB(v) ≈ (N / k) * sum over sampled s of delta_s·(v) / 2``.

    Fewer sources mean proportionally fewer messages; the round count
    stays O(N) (the DFS token still tours the tree), which is why the
    paper's *exact* O(N) algorithm dominates in this model — this
    variant exists to measure exactly that trade-off.

    ``telemetry`` reaches the simulator and the root node exactly as in
    :func:`distributed_betweenness`; its post-run ``finalize_run`` sees
    the inner (unscaled) :class:`DistributedBCResult`.  Remaining
    keyword arguments are forwarded to :func:`distributed_betweenness`.
    """
    import random as _random

    require_connected(graph)
    n = graph.num_nodes
    if not 1 <= num_samples <= n:
        raise ValueError("need 1 <= num_samples <= N")
    rng = _random.Random(seed)
    pivots = tuple(sorted(rng.sample(range(n), num_samples)))
    result = distributed_betweenness(
        graph,
        arithmetic=arithmetic,
        root=root,
        config=ProtocolConfig(sources=frozenset(pivots)),
        telemetry=telemetry,
        **kwargs,
    )
    scale = n / float(num_samples)
    estimate = {v: value * scale for v, value in result.betweenness.items()}
    return SampledBCResult(
        graph=graph,
        estimate=estimate,
        pivots=pivots,
        diameter_bound=result.diameter,
        rounds=result.rounds,
        stats=result.stats,
        arithmetic=result.arithmetic,
    )
