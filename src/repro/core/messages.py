"""Wire messages of the distributed betweenness centrality protocol.

Each message type corresponds to one arrow in the protocol narrative:

========================  ====================================================
message                   role
========================  ====================================================
:class:`TreeWave`         BFS(u0) spanning-tree construction flood (phase 0)
:class:`TreeJoin`         child → parent tree membership notification
:class:`SubtreeCount`     convergecast of subtree sizes (root learns N)
:class:`Announce`         root broadcast of N down the tree
:class:`DfsToken`         the DFS token pipelining BFS starts (Algorithm 2)
:class:`BfsWave`          one BFS wavefront step carrying (s, T_s, d, sigma)
:class:`DoneReport`       convergecast: subtree finished counting; max ecc
:class:`AggStart`         root broadcast of (D, T_max, aggregation base)
:class:`AggValue`         one aggregation step carrying (s, 1/sigma + psi)
========================  ====================================================

Every payload is O(log N) bits under L-float arithmetic: identifiers
cost ``id_bits``, round stamps ``round_bits``, distances
``distance_bits`` and arithmetic values their context-reported width —
which is how Lemmas 3 and 5 become machine-checkable.
"""

from __future__ import annotations

from typing import Any

from repro.arithmetic.context import ArithmeticContext
from repro.congest.message import Message, WireFormat, int_bits


class TreeWave(Message):
    """Spanning-tree flood for BFS(u0); carries the sender's tree depth."""

    __slots__ = ("dist",)

    def __init__(self, dist: int):
        self.dist = dist

    def payload_bits(self, wire: WireFormat) -> int:
        return wire.distance_bits

    def __repr__(self) -> str:
        return "TreeWave(dist={})".format(self.dist)


class TreeJoin(Message):
    """Sent by a node to its chosen BFS(u0)-tree parent."""

    __slots__ = ()

    def payload_bits(self, wire: WireFormat) -> int:
        return 0

    def __repr__(self) -> str:
        return "TreeJoin()"


class SubtreeCount(Message):
    """Convergecast of subtree sizes so the root learns N."""

    __slots__ = ("count",)

    def __init__(self, count: int):
        self.count = count

    def payload_bits(self, wire: WireFormat) -> int:
        return int_bits(self.count)

    def __repr__(self) -> str:
        return "SubtreeCount({})".format(self.count)


class Announce(Message):
    """Root broadcast of the node count N down the tree."""

    __slots__ = ("num_nodes",)

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes

    def payload_bits(self, wire: WireFormat) -> int:
        return int_bits(self.num_nodes)

    def __repr__(self) -> str:
        return "Announce(N={})".format(self.num_nodes)


class DfsToken(Message):
    """The DFS token; ``returning`` marks a child → parent backtrack."""

    __slots__ = ("returning",)

    def __init__(self, returning: bool = False):
        self.returning = returning

    def payload_bits(self, wire: WireFormat) -> int:
        return 1

    def __repr__(self) -> str:
        return "DfsToken(returning={})".format(self.returning)


class BfsWave(Message):
    """One hop of the BFS from ``source`` (lines 10–18 of Algorithm 2).

    Carries the source id, the global start round T_s, the sender's
    distance from the source, and the sender's shortest-path count in
    the pipeline's arithmetic (an exact integer or an L-bit float).
    """

    __slots__ = ("source", "start_time", "dist", "sigma", "_sigma_bits")

    def __init__(
        self,
        source: int,
        start_time: int,
        dist: int,
        sigma: Any,
        ctx: ArithmeticContext,
    ):
        self.source = source
        self.start_time = start_time
        self.dist = dist
        self.sigma = sigma
        self._sigma_bits = ctx.value_bits(sigma)

    def payload_bits(self, wire: WireFormat) -> int:
        return (
            wire.id_bits + wire.round_bits + wire.distance_bits + self._sigma_bits
        )

    def __repr__(self) -> str:
        return "BfsWave(s={}, Ts={}, d={}, sigma={!r})".format(
            self.source, self.start_time, self.dist, self.sigma
        )


class DoneReport(Message):
    """Convergecast: the sender's whole subtree finished counting.

    ``max_ecc`` aggregates the maximum eccentricity seen in the subtree,
    from which the root computes the diameter D.
    """

    __slots__ = ("max_ecc",)

    def __init__(self, max_ecc: int):
        self.max_ecc = max_ecc

    def payload_bits(self, wire: WireFormat) -> int:
        return wire.distance_bits

    def __repr__(self) -> str:
        return "DoneReport(max_ecc={})".format(self.max_ecc)


class AggStart(Message):
    """Root broadcast opening the aggregation phase (Algorithm 3 line 1).

    Carries the diameter D, the latest BFS start time T_max, and the
    global round ``base`` that anchors the sending schedule: node u
    sends its value for source s at round ``base + T_s + D − d(s, u)``.
    """

    __slots__ = ("diameter", "max_start_time", "base")

    def __init__(self, diameter: int, max_start_time: int, base: int):
        self.diameter = diameter
        self.max_start_time = max_start_time
        self.base = base

    def payload_bits(self, wire: WireFormat) -> int:
        return wire.distance_bits + 2 * wire.round_bits

    def __repr__(self) -> str:
        return "AggStart(D={}, Tmax={}, base={})".format(
            self.diameter, self.max_start_time, self.base
        )


class AggValue(Message):
    """One aggregation send: ``value = 1/sigma_su + psi_s(u)`` (line 12).

    Sent by u to every predecessor in P_s(u) at its scheduled round.
    """

    __slots__ = ("source", "value", "_value_bits")

    def __init__(self, source: int, value: Any, ctx: ArithmeticContext):
        self.source = source
        self.value = value
        self._value_bits = ctx.value_bits(value)

    def payload_bits(self, wire: WireFormat) -> int:
        return wire.id_bits + self._value_bits

    def __repr__(self) -> str:
        return "AggValue(s={}, value={!r})".format(self.source, self.value)
