"""Compatibility shim: protocol messages now live in :mod:`repro.wire`.

The nine betweenness-protocol message types were defined here with
per-class heuristic ``payload_bits``; they now carry declarative
``WIRE_LAYOUT`` schemas in :mod:`repro.wire.messages` and are sized by
the exact codec.  Note one signature change from the old module:
``BfsWave`` and ``AggValue`` no longer take a trailing arithmetic
context — payload widths are type-driven (see
:func:`repro.wire.values.value_bits`).
"""

from repro.wire import (
    PROTOCOL_MESSAGES,
    AggStart,
    AggValue,
    Announce,
    BfsWave,
    DfsToken,
    DoneReport,
    SubtreeCount,
    TreeJoin,
    TreeWave,
)

__all__ = [
    "PROTOCOL_MESSAGES",
    "AggStart",
    "AggValue",
    "Announce",
    "BfsWave",
    "DfsToken",
    "DoneReport",
    "SubtreeCount",
    "TreeJoin",
    "TreeWave",
]
