"""Phase 0: BFS(u0) spanning tree construction and node census.

The paper assumes a BFS tree rooted at a "randomly selected vertex" as
given input to Algorithm 2, and its termination reasoning implicitly
needs every node to know N (a node is finished counting exactly when it
holds N source records).  This phase makes both concrete with textbook
CONGEST primitives, all O(D) rounds:

1. **Flood:** the root broadcasts a :class:`TreeWave`; every node
   settles at its BFS depth, picks the smallest-id parent among the
   first-round senders, joins it with :class:`TreeJoin`, and re-floods.
2. **Census convergecast:** a node's children are final two rounds after
   it settles (children settle one round later and join immediately);
   subtree sizes then flow up via :class:`SubtreeCount` so the root
   learns N.
3. **Announce:** the root broadcasts N down the tree.

The tree (parent/children pointers) is reused by the later convergecast
and broadcast steps of the pipeline, and the DFS token of Algorithm 2
walks its edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.congest.node import RoundContext
from repro.core.messages import Announce, SubtreeCount, TreeJoin, TreeWave
from repro.exceptions import ProtocolError


class TreePhase:
    """Per-node state machine for spanning-tree construction and census."""

    def __init__(self, node_id: int, is_root: bool):
        self.node_id = node_id
        self.is_root = is_root
        #: depth in BFS(u0); None until the wave arrives.
        self.dist: Optional[int] = None
        self.parent: Optional[int] = None
        self.settle_round: Optional[int] = None
        self.children: Set[int] = set()
        self.children_final = False
        self._count_sent = False
        self._child_counts: Dict[int, int] = {}
        #: N, once the Announce reaches this node (the root computes it).
        self.num_nodes: Optional[int] = None
        #: round at which the root computed N (root only), else None.
        self.census_round: Optional[int] = None

    # ------------------------------------------------------------------
    def on_round(
        self,
        ctx: RoundContext,
        waves: List[Tuple[int, TreeWave]],
        joins: List[Tuple[int, TreeJoin]],
        counts: List[Tuple[int, SubtreeCount]],
        announces: List[Tuple[int, Announce]],
    ) -> None:
        """Advance the phase by one round.

        The caller (the composite node) has already split the inbox by
        message type.
        """
        if self.is_root and ctx.round_number == 0:
            self._settle(ctx, dist=0, parent=None)

        for sender, _join in joins:
            self.children.add(sender)

        for sender, count in counts:
            self._child_counts[sender] = count.count

        if self.dist is None and waves:
            depths = {wave.dist for _, wave in waves}
            if len(depths) != 1:
                raise ProtocolError(
                    "node {} saw tree waves at depths {}".format(
                        self.node_id, sorted(depths)
                    )
                )
            parent = min(sender for sender, _ in waves)
            self._settle(ctx, dist=waves[0][1].dist + 1, parent=parent)

        if (
            not self.children_final
            and self.settle_round is not None
            and ctx.round_number >= self.settle_round + 2
        ):
            self.children_final = True

        self._maybe_send_count(ctx)
        self._handle_announce(ctx, announces)

    # ------------------------------------------------------------------
    def _settle(self, ctx: RoundContext, dist: int, parent: Optional[int]):
        self.dist = dist
        self.parent = parent
        self.settle_round = ctx.round_number
        ctx.broadcast(TreeWave(dist))
        if parent is not None:
            ctx.send(parent, TreeJoin())

    def _maybe_send_count(self, ctx: RoundContext) -> None:
        if self._count_sent or not self.children_final:
            return
        if any(child not in self._child_counts for child in self.children):
            return
        subtree = 1 + sum(self._child_counts.values())
        self._count_sent = True
        if self.is_root:
            self.num_nodes = subtree
            self.census_round = ctx.round_number
            for child in sorted(self.children):
                ctx.send(child, Announce(subtree))
        else:
            if self.parent is None:
                raise ProtocolError(
                    "non-root node {} settled without a parent".format(
                        self.node_id
                    )
                )
            ctx.send(self.parent, SubtreeCount(subtree))

    def _handle_announce(
        self, ctx: RoundContext, announces: List[Tuple[int, Announce]]
    ) -> None:
        if not announces:
            return
        if self.num_nodes is not None:
            raise ProtocolError(
                "node {} received a duplicate census announce".format(
                    self.node_id
                )
            )
        if not self.children_final:
            raise ProtocolError(
                "node {} got the announce before its children were "
                "final".format(self.node_id)
            )
        self.num_nodes = announces[0][1].num_nodes
        for child in sorted(self.children):
            ctx.send(child, Announce(self.num_nodes))

    # ------------------------------------------------------------------
    def next_event(self) -> Optional[int]:
        """Next round at which this phase acts without receiving a message.

        The only round-triggered transition is ``children_final``, which
        rises two rounds after settling; everything else in the phase is
        message-driven.  Used by the event engine's wake registration.
        """
        if not self.children_final and self.settle_round is not None:
            return self.settle_round + 2
        return None

    def sorted_children(self) -> List[int]:
        """Tree children in id order (the deterministic DFS visit order)."""
        return sorted(self.children)
