"""Protocol configuration: the generalized knobs of the aggregation recursion.

The paper's Eq. (14) recursion,

    psi_s(v) = sum over w with v in P_s(w) of (unit(w) + psi_s(w)),

covers a family of centrality computations depending on the *unit term*
and on which nodes participate:

* **betweenness** (the paper's main result): ``unit(w) = 1/sigma_sw``,
  every node is a BFS source and a counted target;
* **stress** (footnote 3: "the stress centrality can also be computed
  in a similar way"): ``unit(w) = 1`` — psi then counts shortest-path
  continuations, and ``sigma_sv * psi_s(v)`` is the number of shortest
  paths through v;
* **pivot sampling** (the Holzer-thesis approximation the related work
  sketches): only a subset S of nodes roots a BFS, and the result is
  extrapolated by N/|S|;
* **weighted graphs via subdivision** (the future-work direction in the
  paper's conclusion, after Nanongkai [16]): virtual nodes placed on
  heavy edges must neither root BFS trees nor contribute unit terms —
  ``sources = targets =`` the real nodes.

:class:`ProtocolConfig` carries those knobs through the node factory;
the default configuration is exactly the paper's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

#: Unit-term modes for the aggregation recursion.
UNIT_BETWEENNESS = "betweenness"
UNIT_STRESS = "stress"

_VALID_UNITS = (UNIT_BETWEENNESS, UNIT_STRESS)


@dataclass(frozen=True)
class ProtocolConfig:
    """Knobs of the distributed protocol (defaults = the paper verbatim).

    Attributes
    ----------
    sources:
        Nodes that root a BFS in the counting phase; ``None`` means all
        nodes (the exact algorithm).  Every node must know this set —
        it is protocol *input*, like N would be in a KT1 model.
    targets:
        Nodes contributing a unit term when they send (i.e. the t's
        counted in ``CB(v) = sum_{s != t != v} delta_st(v)``); ``None``
        means all nodes.
    unit:
        ``"betweenness"`` (unit = 1/sigma) or ``"stress"`` (unit = 1).
    aggregate:
        ``False`` runs the counting phase only (distributed APSP).
    """

    sources: Optional[FrozenSet[int]] = None
    targets: Optional[FrozenSet[int]] = None
    unit: str = UNIT_BETWEENNESS
    aggregate: bool = True

    def __post_init__(self):
        if self.unit not in _VALID_UNITS:
            raise ValueError(
                "unit must be one of {}, got {!r}".format(_VALID_UNITS, self.unit)
            )
        if self.sources is not None:
            object.__setattr__(self, "sources", frozenset(self.sources))
            if not self.sources:
                raise ValueError("sources must be None or non-empty")
        if self.targets is not None:
            object.__setattr__(self, "targets", frozenset(self.targets))

    def is_source(self, node: int) -> bool:
        """Whether ``node`` roots a BFS in the counting phase."""
        return self.sources is None or node in self.sources

    def is_target(self, node: int) -> bool:
        """Whether ``node`` contributes a unit term when sending."""
        return self.targets is None or node in self.targets

    def expected_sources(self, num_nodes: Optional[int]) -> Optional[int]:
        """How many ledger records complete a node's counting phase.

        ``None`` when the count is not yet known (all-sources mode
        before the census announce arrives).
        """
        if self.sources is not None:
            return len(self.sources)
        return num_nodes
