"""Two-party communication complexity framework (Definitions 1–2, Theorem 4).

The lower bounds of Section IX rest on a simulation argument: Alice
holds the subset family X, Bob holds Y, and *any* distributed protocol
on a gadget whose left side depends only on X and right side only on Y
can be simulated by the two players, exchanging exactly the bits that
cross the cut.  This module makes each ingredient explicit:

* :class:`TwoPartyProtocol` — the abstract alternating-message game of
  Definition 1, with a transcript-bit meter;
* :class:`ExchangeEverythingDisjointness` — the trivial deterministic
  upper bound for sparse set disjointness (Alice ships her whole encoded
  family: ``n * ceil(log2 C(m, m/2))`` bits);
* :func:`simulate_gadget_protocol` — Alice/Bob jointly simulate the
  distributed BC algorithm on a Figure 3 gadget; the transcript length
  is the measured cut traffic, and the output is the disjointness
  answer read off the flag centralities;
* :func:`deterministic_disjointness_bound` — the
  ``D(DISJ) = log2 C(n^2, n)`` bound of Theorem 4 ([20]) and its
  Ω(n log n) simplification.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.lowerbound.cut import ReductionOutcome, solve_disjointness_via_bc
from repro.lowerbound.subsets import Subset, subset_rank


class TwoPartyProtocol(abc.ABC):
    """An alternating-message protocol between Alice and Bob.

    Subclasses implement :meth:`alice_round` and :meth:`bob_round`,
    each returning the next message as a non-negative integer plus its
    bit width (or ``None`` when the party is done talking); the driver
    alternates until both are silent, then asks Bob for the output.
    """

    @abc.abstractmethod
    def alice_round(
        self, received: Optional[int]
    ) -> Optional[Tuple[int, int]]:
        """Alice's next message as ``(payload, bits)``, or None."""

    @abc.abstractmethod
    def bob_round(self, received: Optional[int]) -> Optional[Tuple[int, int]]:
        """Bob's next message as ``(payload, bits)``, or None."""

    @abc.abstractmethod
    def output(self) -> bool:
        """The computed predicate, asked after both parties stop."""

    def run(self, max_rounds: int = 10_000) -> Tuple[bool, int]:
        """Drive the protocol; returns ``(output, transcript_bits)``."""
        transcript_bits = 0
        to_bob: Optional[int] = None
        to_alice: Optional[int] = None
        for _ in range(max_rounds):
            a_msg = self.alice_round(to_alice)
            to_alice = None
            if a_msg is not None:
                payload, bits = a_msg
                _check_width(payload, bits)
                transcript_bits += bits
                to_bob = payload
            b_msg = self.bob_round(to_bob)
            to_bob = None
            if b_msg is not None:
                payload, bits = b_msg
                _check_width(payload, bits)
                transcript_bits += bits
                to_alice = payload
            if a_msg is None and b_msg is None:
                return self.output(), transcript_bits
        raise RuntimeError("two-party protocol did not terminate")


def _check_width(payload: int, bits: int) -> None:
    if payload < 0 or bits < 1 or payload.bit_length() > bits:
        raise ValueError(
            "payload {} does not fit in {} declared bits".format(payload, bits)
        )


def encode_family(family: Sequence[Subset], m: int) -> List[int]:
    """Corollary 2: encode each size-(m/2) subset by lexicographic rank."""
    return [subset_rank(sorted(subset), m) for subset in family]


class ExchangeEverythingDisjointness(TwoPartyProtocol):
    """The trivial deterministic DISJ protocol: Alice sends all her ranks.

    Cost: ``n * ceil(log2 C(m, m/2))`` bits + 1 answer bit — the
    baseline any clever protocol (or the distributed simulation) is
    compared against.
    """

    def __init__(self, x_family: Sequence[Subset], y_family: Sequence[Subset], m: int):
        self.m = m
        self._x_ranks = encode_family(x_family, m)
        self._y_ranks = set(encode_family(y_family, m))
        self._rank_bits = max(
            1, math.ceil(math.log2(math.comb(m, m // 2)))
        )
        self._sent = 0
        self._answer: Optional[bool] = None

    def alice_round(self, received):
        if self._sent < len(self._x_ranks):
            rank = self._x_ranks[self._sent]
            self._sent += 1
            return rank, self._rank_bits
        return None

    def bob_round(self, received):
        if received is not None:
            if received in self._y_ranks:
                self._answer = True
            return None  # Bob stays silent until the end
        if self._answer is None:
            self._answer = False
        return None

    def output(self) -> bool:
        # output = "families intersect" (DISJ is the negation)
        return bool(self._answer)

    @property
    def worst_case_bits(self) -> int:
        """The protocol's deterministic communication cost."""
        return len(self._x_ranks) * self._rank_bits


@dataclass
class GadgetSimulationReport:
    """Outcome of the Alice/Bob simulation of the distributed protocol."""

    outcome: ReductionOutcome
    trivial_protocol_bits: int
    disjointness_lower_bound_bits: float

    @property
    def simulation_bits(self) -> int:
        """Bits the simulated parties exchanged (= measured cut traffic)."""
        return self.outcome.cut_bits


def deterministic_disjointness_bound(n: int) -> float:
    """Theorem 4: D(DISJ_{n^2 choose n}) = log2 C(n^2, n) = Ω(n log n)."""
    if n < 1:
        return 0.0
    return math.lgamma(n * n + 1) / math.log(2) - (
        math.lgamma(n + 1) + math.lgamma(n * n - n + 1)
    ) / math.log(2)


def simulate_gadget_protocol(
    x_family: Sequence[Subset],
    y_family: Sequence[Subset],
    m: int,
    arithmetic: str = "lfloat",
) -> GadgetSimulationReport:
    """Alice/Bob simulate distributed BC on the Figure 3 gadget.

    Alice owns the left side (L, S, F, A, B, P — a function of X only),
    Bob the right (L', T, Q — a function of Y only); the messages they
    must exchange are exactly the deliveries crossing the m+1-edge cut,
    which the instrumented simulator counts.  The report pairs that
    measured transcript with the trivial protocol's cost and the
    Theorem 4 lower bound.
    """
    outcome = solve_disjointness_via_bc(
        x_family, y_family, m, arithmetic=arithmetic
    )
    trivial = ExchangeEverythingDisjointness(x_family, y_family, m)
    answer, bits = trivial.run()
    if answer != outcome.expected_intersects:
        raise RuntimeError("trivial protocol disagrees with ground truth")
    assert bits <= trivial.worst_case_bits + 1
    return GadgetSimulationReport(
        outcome=outcome,
        trivial_protocol_bits=trivial.worst_case_bits,
        disjointness_lower_bound_bits=deterministic_disjointness_bound(
            len(x_family)
        ),
    )
