"""The Figure 2 construction: the diameter lower-bound gadget.

Given families X, Y of size-(m/2) subsets of {0..m-1} and a parameter
x >= 8, the gadget's diameter is

    * ``x``     when no X_i equals any Y_j  (X ∩ Y = ∅), and
    * ``x + 2`` otherwise                               (Lemma 8),

while only ``m + 1 = O(log N)`` edges cross the left/right cut, so any
distributed diameter protocol solves sparse set disjointness with
O(m log N) bits per round across the cut — the Theorem 5 argument.

Topology (left to right):

* left terminals L_0..L_{m-1} and right terminals L'_0..L'_{m-1},
  joined pairwise by paths of length x - 6;
* per subset X_j: a node S_j adjacent to L_i for every i in X_j, plus a
  pendant chain S_j — S''_j — S'_j;
* per subset Y_j: a node T_j adjacent to L'_i for every i NOT in Y_j
  (note the complement — this is what encodes equality as
  unreachability), plus a chain T_j — T''_j — T'_j;
* hubs A (adjacent to every L_i) and B (adjacent to every L'_i) joined
  by another path of length x - 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.exceptions import LowerBoundParameterError
from repro.graphs.graph import Graph
from repro.lowerbound.subsets import Subset, half_size


@dataclass
class DiameterGadget:
    """The built gadget with named node handles.

    Attributes map role names to node ids: ``left[i]`` is L_i,
    ``right[i]`` is L'_i, ``s[j]``/``s1[j]``/``s2[j]`` are
    S_j/S'_j/S''_j, similarly for t, and ``a``/``b`` the two hubs.
    ``left_side`` is the node set used as the communication cut
    (everything built from X plus the left path halves plus A's half).
    """

    graph: Graph
    x: int
    m: int
    n: int
    x_family: List[Subset]
    y_family: List[Subset]
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    s: List[int] = field(default_factory=list)
    s_prime: List[int] = field(default_factory=list)
    s_dprime: List[int] = field(default_factory=list)
    t: List[int] = field(default_factory=list)
    t_prime: List[int] = field(default_factory=list)
    t_dprime: List[int] = field(default_factory=list)
    a: int = -1
    b: int = -1
    left_side: frozenset = frozenset()

    def expected_distance(self, i: int, j: int) -> int:
        """Lemma 8: d(S'_i, T'_j) = x if X_i != Y_j else x + 2."""
        return self.x if self.x_family[i] != self.y_family[j] else self.x + 2

    def expected_diameter(self) -> int:
        """Lemma 8: D = x if the families are disjoint, else x + 2."""
        intersects = bool(set(self.x_family) & set(self.y_family))
        return self.x + 2 if intersects else self.x

    def cut_width(self) -> int:
        """Edges crossing the left/right cut (= m + 1 inter-side paths)."""
        crossing = 0
        for u, v in self.graph.edges():
            if (u in self.left_side) != (v in self.left_side):
                crossing += 1
        return crossing


def build_diameter_gadget(
    x_family: Sequence[Subset],
    y_family: Sequence[Subset],
    x: int,
    m: int,
) -> DiameterGadget:
    """Construct the Figure 2 gadget for the given families.

    Parameters
    ----------
    x_family, y_family:
        n size-(m/2) subsets of {0..m-1} each.
    x:
        The target diameter parameter; must be >= 8 (the constant slack
        the construction needs, cf. Theorem 5).
    m:
        The ground-set size (even).
    """
    if x < 8:
        raise LowerBoundParameterError("the construction requires x >= 8")
    half = half_size(m)
    n = len(x_family)
    if len(y_family) != n:
        raise LowerBoundParameterError("families must have equal size")
    for subset in list(x_family) + list(y_family):
        if len(subset) != half or not all(0 <= e < m for e in subset):
            raise LowerBoundParameterError(
                "every subset must have size m/2 within {{0..{}}}".format(m - 1)
            )

    ids = _IdAllocator()
    edges: List[Tuple[int, int]] = []

    left = [ids.take() for _ in range(m)]
    right = [ids.take() for _ in range(m)]
    left_side_nodes = set(left)

    # L_i -- (path of length x-6) -- L'_i ; the first half of each path
    # belongs to the left side of the cut.
    for i in range(m):
        path_nodes = _path(ids, edges, left[i], right[i], x - 6)
        left_side_nodes.update(path_nodes[: len(path_nodes) // 2])

    s, s_p, s_pp = [], [], []
    for j in range(n):
        sj = ids.take()
        s.append(sj)
        for i in sorted(x_family[j]):
            edges.append((left[i], sj))
        spp = ids.take()  # S''_j sits between S_j and S'_j
        sp = ids.take()
        s_pp.append(spp)
        s_p.append(sp)
        edges.append((sj, spp))
        edges.append((spp, sp))
        left_side_nodes.update((sj, spp, sp))

    t, t_p, t_pp = [], [], []
    for j in range(n):
        tj = ids.take()
        t.append(tj)
        for i in range(m):
            if i not in y_family[j]:
                edges.append((right[i], tj))
        tpp = ids.take()
        tp = ids.take()
        t_pp.append(tpp)
        t_p.append(tp)
        edges.append((tj, tpp))
        edges.append((tpp, tp))

    a = ids.take()
    b = ids.take()
    left_side_nodes.add(a)
    for i in range(m):
        edges.append((a, left[i]))
        edges.append((b, right[i]))
    ab_path = _path(ids, edges, a, b, x - 6)
    left_side_nodes.update(ab_path[: len(ab_path) // 2])

    graph = Graph(ids.count, edges, name="diameter-gadget-x{}-m{}-n{}".format(x, m, n))
    return DiameterGadget(
        graph=graph,
        x=x,
        m=m,
        n=n,
        x_family=list(x_family),
        y_family=list(y_family),
        left=left,
        right=right,
        s=s,
        s_prime=s_p,
        s_dprime=s_pp,
        t=t,
        t_prime=t_p,
        t_dprime=t_pp,
        a=a,
        b=b,
        left_side=frozenset(left_side_nodes),
    )


class _IdAllocator:
    """Dense node-id dispenser for gadget construction."""

    def __init__(self):
        self.count = 0

    def take(self) -> int:
        nid = self.count
        self.count += 1
        return nid


def _path(
    ids: _IdAllocator,
    edges: List[Tuple[int, int]],
    u: int,
    v: int,
    length: int,
) -> List[int]:
    """Add a u-v path of the given edge count; returns interior nodes."""
    if length < 1:
        raise LowerBoundParameterError("path length must be >= 1")
    interior = [ids.take() for _ in range(length - 1)]
    chain = [u] + interior + [v]
    edges.extend(zip(chain, chain[1:]))
    return interior
