"""Section IX lower-bound constructions and communication-cut analysis."""

from repro.lowerbound.bc_gadget import BCGadget, build_bc_gadget
from repro.lowerbound.cut import (
    ReductionOutcome,
    cut_capacity_per_round,
    disjointness_bits_lower_bound,
    information_lower_bound_rounds,
    optimality_gap,
    solve_disjointness_via_bc,
    theorem_lower_bound,
)
from repro.lowerbound.diameter_gadget import DiameterGadget, build_diameter_gadget
from repro.lowerbound.two_party import (
    ExchangeEverythingDisjointness,
    GadgetSimulationReport,
    TwoPartyProtocol,
    deterministic_disjointness_bound,
    encode_family,
    simulate_gadget_protocol,
)
from repro.lowerbound.subsets import (
    Subset,
    all_half_subsets,
    families_intersect,
    family_pair,
    half_size,
    minimal_m,
    random_family,
    subset_rank,
    subset_unrank,
)

__all__ = [
    "BCGadget",
    "DiameterGadget",
    "ReductionOutcome",
    "Subset",
    "all_half_subsets",
    "build_bc_gadget",
    "build_diameter_gadget",
    "cut_capacity_per_round",
    "disjointness_bits_lower_bound",
    "families_intersect",
    "family_pair",
    "half_size",
    "information_lower_bound_rounds",
    "minimal_m",
    "optimality_gap",
    "random_family",
    "solve_disjointness_via_bc",
    "subset_rank",
    "subset_unrank",
    "theorem_lower_bound",
    "ExchangeEverythingDisjointness",
    "GadgetSimulationReport",
    "TwoPartyProtocol",
    "deterministic_disjointness_bound",
    "encode_family",
    "simulate_gadget_protocol",
]
