"""Subset-family machinery for the Section IX lower-bound gadgets.

Both gadget constructions are parameterized by two families
X = (X_1..X_n) and Y = (Y_1..Y_n) of size-(m/2) subsets of
M = {0, .., m-1}; the hard question ("is some X_i equal to some Y_j?")
is exactly the sparse set disjointness instance of Corollary 2, with
subsets encoded as numbers by lexicographic rank.

This module provides deterministic and seeded family generators, the
(un)ranking bijection between size-k subsets and integers, and the
binomial bound ``C(m, m/2) >= n**2`` the paper uses to size m = O(log n).
"""

from __future__ import annotations

import math
import random
from itertools import combinations
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import LowerBoundParameterError

Subset = FrozenSet[int]


def half_size(m: int) -> int:
    """The subset cardinality m/2 used throughout Section IX."""
    if m < 2 or m % 2:
        raise LowerBoundParameterError("m must be a positive even integer")
    return m // 2


def minimal_m(n: int, squared: bool = True) -> int:
    """Smallest even m with C(m, m/2) >= n**2 (or >= n).

    The paper sets ``m = O(log n)`` so that the middle binomial majorizes
    the number of possible encoded values; ``squared=False`` relaxes to
    merely fitting n distinct subsets (enough to *instantiate* a gadget).
    """
    if n < 1:
        raise LowerBoundParameterError("need n >= 1")
    target = n * n if squared else n
    m = 2
    while math.comb(m, m // 2) < target:
        m += 2
    return m


def subset_rank(subset: Sequence[int], m: int) -> int:
    """Lexicographic rank of a size-k subset of {0..m-1} (Corollary 2).

    This is the combinatorial number system: the rank counts size-k
    subsets lexicographically smaller than ``subset``.
    """
    elems = sorted(subset)
    k = len(elems)
    rank = 0
    prev = -1
    for index, value in enumerate(elems):
        for skipped in range(prev + 1, value):
            rank += math.comb(m - skipped - 1, k - index - 1)
        prev = value
    return rank


def subset_unrank(rank: int, m: int, k: int) -> Subset:
    """Inverse of :func:`subset_rank`: the rank-th size-k subset."""
    total = math.comb(m, k)
    if not 0 <= rank < total:
        raise LowerBoundParameterError(
            "rank {} outside [0, {})".format(rank, total)
        )
    out: List[int] = []
    value = 0
    remaining = k
    while remaining:
        count = math.comb(m - value - 1, remaining - 1)
        if rank < count:
            out.append(value)
            remaining -= 1
        else:
            rank -= count
        value += 1
    return frozenset(out)


def all_half_subsets(m: int) -> List[Subset]:
    """Every size-(m/2) subset of {0..m-1}, in lexicographic order."""
    k = half_size(m)
    return [frozenset(c) for c in combinations(range(m), k)]


def random_family(
    n: int, m: int, seed: int = 0, distinct: bool = True
) -> List[Subset]:
    """n seeded-random size-(m/2) subsets of {0..m-1}.

    With ``distinct=True`` (default) the subsets are pairwise different,
    which the BC gadget needs so that at most one Y_j matches each X_i.
    """
    k = half_size(m)
    total = math.comb(m, k)
    if distinct and n > total:
        raise LowerBoundParameterError(
            "cannot pick {} distinct subsets out of {}".format(n, total)
        )
    rng = random.Random(seed)
    if distinct:
        ranks = rng.sample(range(total), n)
    else:
        ranks = [rng.randrange(total) for _ in range(n)]
    return [subset_unrank(r, m, k) for r in ranks]


def family_pair(
    n: int,
    m: Optional[int] = None,
    seed: int = 0,
    force_intersection: Optional[bool] = None,
) -> Tuple[List[Subset], List[Subset], int]:
    """A matched (X, Y, m) instance for the gadgets.

    ``force_intersection=True`` plants exactly one common subset
    (X and Y share one element as *sets of subsets*), ``False``
    guarantees none, ``None`` leaves it to chance.

    Returns ``(X, Y, m)``.
    """
    if m is None:
        # Room for 2n distinct subsets so that a disjoint Y family can
        # always be drawn outside X.
        m = minimal_m(n, squared=False)
        while math.comb(m, m // 2) < 2 * n:
            m += 2
    rng = random.Random(seed)
    x_family = random_family(n, m, seed=rng.randrange(1 << 30))
    y_family = random_family(n, m, seed=rng.randrange(1 << 30))
    x_set = set(x_family)
    if force_intersection is True:
        if not x_set & set(y_family):
            y_family[rng.randrange(n)] = x_family[rng.randrange(n)]
            y_family = _dedupe(y_family, m, keep=set(x_family), rng=rng)
    elif force_intersection is False:
        pool = [s for s in all_half_subsets(m) if s not in x_set]
        if len(pool) < n:
            raise LowerBoundParameterError(
                "m too small to avoid intersection with n={} subsets".format(n)
            )
        y_family = rng.sample(pool, n)
    return x_family, y_family, m


def _dedupe(family, m, keep, rng):
    """Repair accidental duplicates introduced by planting a match.

    Keeps the first occurrence of each subset; replacements are drawn
    from unused subsets (still allowing members of ``keep``).
    """
    seen = set()
    used = set(family)
    out = []
    for subset in family:
        if subset not in seen:
            seen.add(subset)
            out.append(subset)
            continue
        pool = [s for s in all_half_subsets(m) if s not in used]
        replacement = rng.choice(pool)
        used.add(replacement)
        seen.add(replacement)
        out.append(replacement)
    return out


def families_intersect(
    x_family: Sequence[Subset], y_family: Sequence[Subset]
) -> bool:
    """Whether some X_i equals some Y_j — the disjointness predicate."""
    return bool(set(x_family) & set(y_family))
