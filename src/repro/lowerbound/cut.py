"""Communication-across-the-cut experiments (Theorems 5 and 6).

The lower-bound argument is a simulation argument: Alice builds the left
side of a gadget from her subset family, Bob the right side from his,
and they run the distributed protocol, exchanging messages only for
edges that cross the cut.  Solving diameter/BC then answers sparse set
disjointness, which needs Omega(n log n) bits (Theorem 4) — but only
``(m + 1) * O(log N)`` bits fit across the cut per round, giving the
Omega(D + N / log N) round bound.

This module operationalizes both halves:

* :func:`solve_disjointness_via_bc` runs the *actual* distributed BC
  algorithm on a BC gadget with cut instrumentation and reads the
  disjointness answer off the flag centralities — demonstrating the
  reduction end to end;
* :func:`cut_capacity_per_round` and
  :func:`information_lower_bound_rounds` evaluate the counting argument
  so benchmarks can compare measured rounds/bits with the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.pipeline import distributed_betweenness
from repro.lowerbound.bc_gadget import build_bc_gadget
from repro.lowerbound.subsets import Subset


@dataclass
class ReductionOutcome:
    """Result of running distributed BC over a gadget's cut."""

    intersects: bool
    expected_intersects: bool
    flag_values: List[float]
    cut_bits: int
    cut_messages: int
    rounds: int
    cut_width: int
    num_nodes: int

    @property
    def correct(self) -> bool:
        """Whether the protocol-derived answer matches the ground truth."""
        return self.intersects == self.expected_intersects


def solve_disjointness_via_bc(
    x_family: Sequence[Subset],
    y_family: Sequence[Subset],
    m: int,
    arithmetic: str = "lfloat",
) -> ReductionOutcome:
    """Decide set disjointness by running the distributed BC algorithm.

    Builds the Figure 3 gadget, runs the full protocol with the
    left/right cut instrumented, and declares "intersecting" iff some
    flag node's betweenness exceeds 1.25 (the midpoint of the 1 / 1.5
    dichotomy of Lemma 9 — any 0.499-relative-error computation lands on
    the correct side, Theorem 6).
    """
    gadget = build_bc_gadget(x_family, y_family, m)
    result = distributed_betweenness(
        gadget.graph, arithmetic=arithmetic, cut=gadget.left_side
    )
    flags = [result.betweenness[fid] for fid in gadget.f]
    intersects = any(value > 1.25 for value in flags)
    cut = result.stats.cut
    crossing = sum(
        1
        for u, v in gadget.graph.edges()
        if (u in gadget.left_side) != (v in gadget.left_side)
    )
    return ReductionOutcome(
        intersects=intersects,
        expected_intersects=gadget.families_intersect(),
        flag_values=flags,
        cut_bits=cut.bits,
        cut_messages=cut.messages,
        rounds=result.rounds,
        cut_width=crossing,
        num_nodes=gadget.graph.num_nodes,
    )


def disjointness_bits_lower_bound(n: int) -> float:
    """Theorem 4: deciding DISJ on n numbers from [n^2] needs Ω(n log n) bits."""
    if n < 2:
        return 0.0
    return n * math.log2(n)


def cut_capacity_per_round(cut_width: int, num_nodes: int) -> float:
    """Bits the cut can carry per round: width * O(log N)."""
    return cut_width * max(1.0, math.log2(max(2, num_nodes)))


def information_lower_bound_rounds(
    n: int, cut_width: int, num_nodes: int, diameter: int = 0
) -> float:
    """Rounds forced by the counting argument: D + needed-bits / capacity."""
    capacity = cut_capacity_per_round(cut_width, num_nodes)
    return diameter + disjointness_bits_lower_bound(n) / capacity


def theorem_lower_bound(num_nodes: int, diameter: int) -> float:
    """The headline Ω(D + N / log N) round bound (Theorems 5 and 6)."""
    return diameter + num_nodes / max(1.0, math.log2(max(2, num_nodes)))


def optimality_gap(measured_rounds: int, num_nodes: int, diameter: int) -> float:
    """measured / lower-bound: O(log N)-ish for the paper's algorithm.

    The algorithm is "nearly optimal": O(N) measured rounds against the
    Ω(D + N/log N) bound leaves at most a Θ(log N) factor.
    """
    return measured_rounds / theorem_lower_bound(num_nodes, diameter)
