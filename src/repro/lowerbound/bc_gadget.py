"""The Figure 3 construction: the betweenness lower-bound gadget.

The refinement of the diameter gadget whose *betweenness values* encode
the disjointness answer (Lemma 9):

    ``CB(F_i) = 1.5`` if X_i equals some Y_j, else ``CB(F_i) = 1``,

so computing betweenness to within 0.499 relative error solves sparse
set disjointness across the O(log N)-width cut (Theorem 6).

Topology: L_i and L'_i are now adjacent (distance 1); S_j attaches to
L_i for i in X_j and T_j to L'_i for i not in Y_j, as before; each S_i
gets a pendant flag node F_i; and four hubs close the metric:

* P adjacent to every F_i and to Q, A and B;
* Q adjacent to every T_j and to P;
* A adjacent to every L_i and to P;
* B adjacent to every S_j, to every F_i, and to P.

The paper's prose lists only the four "connected to F/T/L/S
respectively" attachments plus the proof-path edges B–P and P–Q.  Two
further edges are *forced* by the proof's claim that the only shortest
paths through F_i have endpoint S_i (checked exhaustively by our test
suite):

* ``B–F_k`` for all k: otherwise d(S_i, F_k) = 3 with one of its three
  shortest paths running S_i → F_i → P → F_k, adding spurious 1/3
  contributions to CB(F_i);
* ``A–P``: otherwise d(L_p, P) = 3 with shortest paths
  L_p → S_j → F_j → P, adding spurious contributions to CB(F_j).

With them, exhaustive verification confirms CB(F_i) ∈ {1, 1.5} exactly
as Lemma 9 states.  See DESIGN.md ("reconstruction choices").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.exceptions import LowerBoundParameterError
from repro.graphs.graph import Graph
from repro.lowerbound.subsets import Subset, half_size


@dataclass
class BCGadget:
    """The built Figure 3 gadget with named node handles."""

    graph: Graph
    m: int
    n: int
    x_family: List[Subset]
    y_family: List[Subset]
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    s: List[int] = field(default_factory=list)
    t: List[int] = field(default_factory=list)
    f: List[int] = field(default_factory=list)
    a: int = -1
    b: int = -1
    p: int = -1
    q: int = -1
    left_side: frozenset = frozenset()

    def expected_flag_centrality(self, i: int) -> Fraction:
        """Lemma 9: CB(F_i) = 3/2 if X_i ∈ Y (as a set), else 1."""
        if self.x_family[i] in set(self.y_family):
            return Fraction(3, 2)
        return Fraction(1)

    def expected_distance_s_t(self, i: int, j: int) -> int:
        """d(S_i, T_j) = 3 if X_i != Y_j else 4 (proof of Lemma 9)."""
        return 3 if self.x_family[i] != self.y_family[j] else 4

    def families_intersect(self) -> bool:
        """The disjointness predicate the gadget encodes."""
        return bool(set(self.x_family) & set(self.y_family))


def build_bc_gadget(
    x_family: Sequence[Subset],
    y_family: Sequence[Subset],
    m: int,
    reconstruction_edges: bool = True,
) -> BCGadget:
    """Construct the Figure 3 gadget for the given subset families.

    ``y_family`` must contain pairwise distinct subsets so that at most
    one Y_j can match a given X_i (otherwise CB(F_i) would exceed 1.5).

    ``reconstruction_edges=False`` builds the graph exactly as the
    paper's *prose* describes (only the four hub attachments plus B–P
    and P–Q) — on which Lemma 9 does **not** hold; the flag centralities
    pick up spurious contributions from (S_i, F_k) and (L_p, P) pairs.
    The test suite demonstrates this, which is why the default adds the
    B–F_k and A–P edges (see the module docstring).
    """
    half = half_size(m)
    n = len(x_family)
    if len(y_family) != n:
        raise LowerBoundParameterError("families must have equal size")
    if len(set(y_family)) != n:
        raise LowerBoundParameterError("Y subsets must be pairwise distinct")
    for subset in list(x_family) + list(y_family):
        if len(subset) != half or not all(0 <= e < m for e in subset):
            raise LowerBoundParameterError(
                "every subset must have size m/2 within {{0..{}}}".format(m - 1)
            )

    next_id = 0

    def take() -> int:
        nonlocal next_id
        nid = next_id
        next_id += 1
        return nid

    edges: List[Tuple[int, int]] = []
    left = [take() for _ in range(m)]
    right = [take() for _ in range(m)]
    for i in range(m):
        edges.append((left[i], right[i]))

    s = [take() for _ in range(n)]
    for j in range(n):
        for i in sorted(x_family[j]):
            edges.append((left[i], s[j]))

    t = [take() for _ in range(n)]
    for j in range(n):
        for i in range(m):
            if i not in y_family[j]:
                edges.append((right[i], t[j]))

    f = [take() for _ in range(n)]
    for i in range(n):
        edges.append((s[i], f[i]))

    a, b, p, q = take(), take(), take(), take()
    for i in range(m):
        edges.append((a, left[i]))
    for j in range(n):
        edges.append((b, s[j]))
        if reconstruction_edges:
            edges.append((b, f[j]))  # reconstruction choice (module doc)
        edges.append((p, f[j]))
        edges.append((q, t[j]))
    edges.append((p, q))
    edges.append((b, p))
    if reconstruction_edges:
        edges.append((a, p))  # reconstruction choice (see module doc)

    graph = Graph(next_id, edges, name="bc-gadget-m{}-n{}".format(m, n))
    # P sits on the left side: the only crossing edges are the m pairs
    # L_i -- L'_i plus P -- Q, so the cut has width m + 1 = O(log N).
    left_side = frozenset(set(left) | set(s) | set(f) | {a, b, p})
    return BCGadget(
        graph=graph,
        m=m,
        n=n,
        x_family=list(x_family),
        y_family=list(y_family),
        left=left,
        right=right,
        s=s,
        t=t,
        f=f,
        a=a,
        b=b,
        p=p,
        q=q,
        left_side=left_side,
    )
