"""Bit-level primitives: writers, readers and self-delimiting integers.

Everything the codec puts on the wire reduces to two operations:

* **fixed-width fields** — a non-negative integer written in exactly
  ``width`` bits (node ids, round stamps, distances, flags, packed
  L-floats);
* **varints** — unbounded non-negative integers (census counts, exact
  shortest-path counts, the numerator/denominator of an exact psi)
  written self-delimitingly, so a decoder knows where the value ends
  without an out-of-band length.

The varint is the Elias delta code of ``value + 1``: for a value whose
successor has ``b`` significant bits it costs ``b + 2*floor(log2 b)``
bits — within ``O(log b)`` of the information-theoretic minimum, which
matters because the exact-arithmetic "Large Value Challenge" rides on
these widths being *faithful* (Theta(N)-bit sigmas must cost Theta(N)
bits, not more, or the strict-mode violation analysis would be off).

Bits are MSB-first: the first bit written is the highest bit of the
word :meth:`BitWriter.getvalue` returns, and the first bit
:meth:`BitReader.read` consumes.
"""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import WireCodecError


def uint_bits(value: int) -> int:
    """Exact width of :meth:`BitWriter.write_uint` for ``value``.

    ``b + 2*floor(log2 b)`` where ``b = (value + 1).bit_length()``.
    """
    if value < 0:
        raise WireCodecError(
            "wire varints are non-negative, got {}".format(value)
        )
    b = (value + 1).bit_length()
    return b + 2 * (b.bit_length() - 1)


class BitWriter:
    """Accumulates an MSB-first bit string as one arbitrary-size integer."""

    __slots__ = ("_acc", "_length")

    def __init__(self):
        self._acc = 0
        self._length = 0

    @property
    def bit_length(self) -> int:
        """Bits written so far."""
        return self._length

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as exactly ``width`` bits."""
        if width < 0:
            raise WireCodecError("field width must be >= 0")
        if value < 0 or value >> width:
            raise WireCodecError(
                "value {} does not fit in {} bits".format(value, width)
            )
        self._acc = (self._acc << width) | value
        self._length += width

    def write_uint(self, value: int) -> None:
        """Append a self-delimiting varint (Elias delta of ``value + 1``)."""
        if value < 0:
            raise WireCodecError(
                "wire varints are non-negative, got {}".format(value)
            )
        v = value + 1
        b = v.bit_length()
        prefix = b.bit_length() - 1
        # Gamma code of b: `prefix` zeros, then b itself in prefix+1 bits
        # (its leading 1 doubles as the prefix terminator) ...
        self.write(b, 2 * prefix + 1)
        # ... then v without its implicit leading 1.
        self.write(v - (1 << (b - 1)), b - 1)

    def getvalue(self) -> Tuple[int, int]:
        """The accumulated bit string as ``(word, bit_length)``."""
        return self._acc, self._length


class BitReader:
    """Consumes a ``(word, bit_length)`` bit string MSB-first."""

    __slots__ = ("_word", "_length", "_pos")

    def __init__(self, word: int, bit_length: int):
        if bit_length < 0 or word < 0 or word >> bit_length:
            raise WireCodecError(
                "word does not fit in the declared {} bits".format(bit_length)
            )
        self._word = word
        self._length = bit_length
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Bits not yet consumed."""
        return self._length - self._pos

    def read(self, width: int) -> int:
        """Consume and return the next ``width`` bits as an integer."""
        if width < 0:
            raise WireCodecError("field width must be >= 0")
        end = self._pos + width
        if end > self._length:
            raise WireCodecError(
                "truncated frame: wanted {} bits, {} left".format(
                    width, self.remaining
                )
            )
        value = (self._word >> (self._length - end)) & ((1 << width) - 1)
        self._pos = end
        return value

    def read_uint(self) -> int:
        """Consume one varint written by :meth:`BitWriter.write_uint`."""
        prefix = 0
        while self.read(1) == 0:
            prefix += 1
        b = (1 << prefix) | self.read(prefix)
        v = (1 << (b - 1)) | self.read(b - 1)
        return v - 1
