"""Per-network wire-size constants.

The CONGEST model allows each node to send at most O(log N) bits per
edge per round.  To make that restriction *checkable* rather than
nominal, every message carries an explicit, exact bit cost: node
identifiers cost ``ceil(log2 N)`` bits, round stamps cost the bits of
the round horizon, unbounded counters use the self-delimiting varint of
:mod:`repro.wire.bits`, and arithmetic payloads their true encoded
width (2L + 1 bits for the paper's floating point format, the varint
length of the carried integers in exact mode — which is exactly how the
"Large Value Challenge" becomes observable).

A :class:`WireFormat` captures the per-network constants; the field
kinds of :mod:`repro.wire.codec` resolve their widths against it.
"""

from __future__ import annotations

import math

#: Bits reserved to tag the message type on the wire.  A real
#: implementation multiplexing a handful of protocol message kinds needs
#: a small constant tag; 4 bits cover the registry's 16 kinds.
TYPE_TAG_BITS = 4


def int_bits(value: int) -> int:
    """Minimal bits to *store* the non-negative ``value`` (at least 1).

    This is the plain ``bit_length`` floor-ed at one bit.  It is **not**
    self-delimiting and therefore no longer used for wire accounting —
    frame sizes come from the varint widths of
    :func:`repro.wire.bits.uint_bits` — but it remains the right tool
    for sizing registers and lower-bound arguments.
    """
    if value < 0:
        raise ValueError("wire integers are non-negative")
    return max(1, value.bit_length())


class WireFormat:
    """Per-network wire-size constants.

    Parameters
    ----------
    num_nodes:
        N; node identifiers cost ``ceil(log2 N)`` bits.
    round_horizon:
        An upper bound on any round number carried in a message.  The
        paper's algorithm finishes within O(N) rounds; the pipeline
        passes ``6 * N + 16`` which is safely above the worst case.
    """

    def __init__(self, num_nodes: int, round_horizon: int = 0):
        if num_nodes < 1:
            raise ValueError("wire format needs at least one node")
        self.num_nodes = num_nodes
        self.id_bits = max(1, math.ceil(math.log2(num_nodes)))
        horizon = round_horizon if round_horizon > 0 else 6 * num_nodes + 16
        self.round_bits = max(1, math.ceil(math.log2(horizon + 1)))
        # Distances and diameters are < N, so they fit in id_bits.
        self.distance_bits = self.id_bits

    def __repr__(self) -> str:
        return "WireFormat(N={}, id_bits={}, round_bits={})".format(
            self.num_nodes, self.id_bits, self.round_bits
        )
