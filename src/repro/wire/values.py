"""Codecs for the arithmetic values carried inside protocol messages.

The protocol ships two families of numbers:

* **exact-mode values** — Python ints (sigma) and
  :class:`fractions.Fraction` (psi), encoded as one or two varints.
  Their width grows with the magnitude, which is the point: the
  "Large Value Challenge" (Section V of the paper) is the observation
  that these can reach Theta(N) bits.
* **L-float values** — the paper's Section VI format, always exactly
  ``2L + 1`` bits via :meth:`repro.arithmetic.lfloat.LFloat.encode`.

Widths are *type-driven*: the same value costs the same bits whatever
context constructed it, so sizing needs no arithmetic context.  Decoding
does need one — an incoming sigma word is an int in exact mode but an
L-float (with ceil rounding semantics) under L-float arithmetic — which
is why :class:`~repro.arithmetic.context.ArithmeticContext` exposes
``read_sigma`` / ``read_psi`` hooks built on the readers here.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from repro.arithmetic.lfloat import LFloat
from repro.exceptions import WireCodecError
from repro.wire.bits import BitReader, BitWriter, uint_bits

WireValue = Union[int, Fraction, LFloat]


def value_bits(value: WireValue) -> int:
    """Exact encoded width of an arithmetic payload, in bits."""
    if isinstance(value, int):
        return uint_bits(value)
    if isinstance(value, LFloat):
        return value.bit_size()
    if isinstance(value, Fraction):
        return uint_bits(value.numerator) + uint_bits(value.denominator)
    raise WireCodecError(
        "cannot size a {!r} wire value".format(type(value).__name__)
    )


def write_value(writer: BitWriter, value: WireValue) -> None:
    """Encode an arithmetic payload; inverse of the typed readers below."""
    if isinstance(value, int):
        writer.write_uint(value)
    elif isinstance(value, LFloat):
        writer.write(value.encode(), value.bit_size())
    elif isinstance(value, Fraction):
        writer.write_uint(value.numerator)
        writer.write_uint(value.denominator)
    else:
        raise WireCodecError(
            "cannot encode a {!r} wire value".format(type(value).__name__)
        )


def read_int(reader: BitReader) -> int:
    """Decode an exact-mode integer (one varint)."""
    return reader.read_uint()


def read_fraction(reader: BitReader) -> Fraction:
    """Decode an exact-mode rational (numerator varint, denominator varint)."""
    numerator = reader.read_uint()
    denominator = reader.read_uint()
    if denominator == 0:
        raise WireCodecError("wire fraction has a zero denominator")
    return Fraction(numerator, denominator)
