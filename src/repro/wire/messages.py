"""The canonical message layer: every message the protocols send.

This module collapses the historical split between the simulator's
generic messages (``repro.congest.message``) and the betweenness
protocol's messages (``repro.core.messages``) into one layer; both old
module paths remain as re-export shims.

Each message type corresponds to one arrow in the protocol narrative:

========================  ====================================================
message                   role
========================  ====================================================
:class:`TreeWave`         BFS(u0) spanning-tree construction flood (phase 0)
:class:`TreeJoin`         child → parent tree membership notification
:class:`SubtreeCount`     convergecast of subtree sizes (root learns N)
:class:`Announce`         root broadcast of N down the tree
:class:`DfsToken`         the DFS token pipelining BFS starts (Algorithm 2)
:class:`BfsWave`          one BFS wavefront step carrying (s, T_s, d, sigma)
:class:`DoneReport`       convergecast: subtree finished counting; max ecc
:class:`AggStart`         root broadcast of (D, T_max, aggregation base)
:class:`AggValue`         one aggregation step carrying (s, 1/sigma + psi)
========================  ====================================================

plus the generic :class:`TokenMessage` / :class:`IntMessage` /
:class:`PayloadMessage` used by tests, benchmarks and the Section IX
communication gadgets.  (The standalone CONGEST primitives register
four more types — ``Wave``, ``Join``, ``Echo``, ``Decide`` — in
:mod:`repro.congest.primitives`.)

Every concrete type declares a ``WIRE_LAYOUT`` and a registry tag, so
its bit cost is the *exact* length of its encoded frame — no estimates.
Under L-float arithmetic every payload is O(log N) bits: identifiers
cost ``id_bits``, round stamps ``round_bits``, distances
``distance_bits`` and arithmetic values ``2L + 1`` bits — which is how
Lemmas 3 and 5 become machine-checkable.
"""

from __future__ import annotations

from typing import Any, ClassVar, Optional, Tuple

from repro.wire.codec import (
    DISTANCE,
    FLAG,
    ID,
    PSI,
    ROUND,
    SIGMA,
    UINT,
    Field,
    layout_bits,
    register,
)
from repro.wire.format import TYPE_TAG_BITS, WireFormat
from repro.wire.values import value_bits


class Message:
    """Base class for everything sent over an edge.

    Subclasses are small frozen records declaring a ``WIRE_LAYOUT``
    (the ordered field list the codec encodes) and registering a type
    tag via :func:`repro.wire.codec.register`.  ``payload_bits`` is
    derived from the layout by default; hot subclasses may override it
    with an equivalent closed form (the codec test suite asserts the
    override, the layout width and the encoded length all agree).

    Messages are treated as **immutable once enqueued**: the simulator
    delivers the same object to every receiver (a broadcast enqueues one
    instance per neighbor) and memoizes :meth:`bit_size` per instance,
    so mutating a message after sending it would desynchronize the bit
    accounting.
    """

    __slots__ = ("_bit_cache",)

    #: 4-bit registry tag; ``None`` until :func:`register` assigns one.
    wire_tag: ClassVar[Optional[int]] = None
    #: Ordered ``(attribute, field kind)`` encoding schema; ``None``
    #: means the payload is opaque (see :class:`PayloadMessage`) or the
    #: subclass overrides :meth:`payload_bits` itself.
    WIRE_LAYOUT: ClassVar[Optional[Tuple[Field, ...]]] = None

    def payload_bits(self, wire: WireFormat) -> int:
        """Bits of the payload under the given wire format."""
        return layout_bits(self, wire)

    def bit_size(self, wire: WireFormat) -> int:
        """Total wire size: type tag plus payload.

        The result is cached per (message, wire) pair — a broadcast of
        one instance over many edges encodes its payload exactly once.
        """
        try:
            cached = self._bit_cache
        except AttributeError:
            cached = None
        if cached is not None and cached[0] is wire:
            return cached[1]
        bits = TYPE_TAG_BITS + self.payload_bits(wire)
        self._bit_cache = (wire, bits)
        return bits


@register(0)
class TokenMessage(Message):
    """A pure signal with no payload (e.g. a round-trip handshake).

    The ``kind`` label is local debugging metadata, not payload: it is
    not encoded, so a decoded token always carries the default label.
    """

    __slots__ = ("kind",)

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = ()

    def __init__(self, kind: str = "token"):
        self.kind = kind

    def __repr__(self) -> str:
        return "TokenMessage({!r})".format(self.kind)


@register(1)
class IntMessage(Message):
    """A single non-negative integer (used by tests and simple protocols)."""

    __slots__ = ("value",)

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (("value", UINT),)

    def __init__(self, value: int):
        self.value = int(value)

    def __repr__(self) -> str:
        return "IntMessage({})".format(self.value)


@register(2)
class PayloadMessage(Message):
    """An opaque payload with an explicitly declared bit cost.

    Useful for modelling protocols (e.g. the two-party communication
    arguments of Section IX) where only the *amount* of information
    matters to the analysis.  A frame encodes the declared width (as
    zeros — the content is opaque by definition); decoding is
    unsupported because the width is not self-delimiting.
    """

    __slots__ = ("payload", "bits")

    def __init__(self, payload: Any, bits: int):
        self.payload = payload
        self.bits = int(bits)

    def payload_bits(self, wire: WireFormat) -> int:
        return self.bits

    def _encode_payload(self, writer, wire: WireFormat) -> None:
        writer.write(0, self.bits)

    def __repr__(self) -> str:
        return "PayloadMessage(bits={})".format(self.bits)


# ----------------------------------------------------------------------
# the distributed betweenness protocol's nine message types
# ----------------------------------------------------------------------
@register(3)
class TreeWave(Message):
    """Spanning-tree flood for BFS(u0); carries the sender's tree depth."""

    __slots__ = ("dist",)

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (("dist", DISTANCE),)

    def __init__(self, dist: int):
        self.dist = dist

    def __repr__(self) -> str:
        return "TreeWave(dist={})".format(self.dist)


@register(4)
class TreeJoin(Message):
    """Sent by a node to its chosen BFS(u0)-tree parent."""

    __slots__ = ()

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = ()

    def __repr__(self) -> str:
        return "TreeJoin()"


@register(5)
class SubtreeCount(Message):
    """Convergecast of subtree sizes so the root learns N."""

    __slots__ = ("count",)

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (("count", UINT),)

    def __init__(self, count: int):
        self.count = count

    def __repr__(self) -> str:
        return "SubtreeCount({})".format(self.count)


@register(6)
class Announce(Message):
    """Root broadcast of the node count N down the tree."""

    __slots__ = ("num_nodes",)

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (("num_nodes", UINT),)

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes

    def __repr__(self) -> str:
        return "Announce(N={})".format(self.num_nodes)


@register(7)
class DfsToken(Message):
    """The DFS token; ``returning`` marks a child → parent backtrack."""

    __slots__ = ("returning",)

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (("returning", FLAG),)

    def __init__(self, returning: bool = False):
        self.returning = returning

    def __repr__(self) -> str:
        return "DfsToken(returning={})".format(self.returning)


@register(8)
class BfsWave(Message):
    """One hop of the BFS from ``source`` (lines 10–18 of Algorithm 2).

    Carries the source id, the global start round T_s, the sender's
    distance from the source, and the sender's shortest-path count in
    the pipeline's arithmetic (an exact integer or an L-bit float).
    """

    __slots__ = ("source", "start_time", "dist", "sigma")

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (
        ("source", ID),
        ("start_time", ROUND),
        ("dist", DISTANCE),
        ("sigma", SIGMA),
    )

    def __init__(self, source: int, start_time: int, dist: int, sigma: Any):
        self.source = source
        self.start_time = start_time
        self.dist = dist
        self.sigma = sigma

    def payload_bits(self, wire: WireFormat) -> int:
        # Closed form of the layout walk: this is the hottest message
        # (O(N * E) deliveries per run).
        return (
            wire.id_bits
            + wire.round_bits
            + wire.distance_bits
            + value_bits(self.sigma)
        )

    def __repr__(self) -> str:
        return "BfsWave(s={}, Ts={}, d={}, sigma={!r})".format(
            self.source, self.start_time, self.dist, self.sigma
        )


@register(9)
class DoneReport(Message):
    """Convergecast: the sender's whole subtree finished counting.

    ``max_ecc`` aggregates the maximum eccentricity seen in the subtree,
    from which the root computes the diameter D.
    """

    __slots__ = ("max_ecc",)

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (("max_ecc", DISTANCE),)

    def __init__(self, max_ecc: int):
        self.max_ecc = max_ecc

    def __repr__(self) -> str:
        return "DoneReport(max_ecc={})".format(self.max_ecc)


@register(10)
class AggStart(Message):
    """Root broadcast opening the aggregation phase (Algorithm 3 line 1).

    Carries the diameter D, the latest BFS start time T_max, and the
    global round ``base`` that anchors the sending schedule: node u
    sends its value for source s at round ``base + T_s + D − d(s, u)``.
    """

    __slots__ = ("diameter", "max_start_time", "base")

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (
        ("diameter", DISTANCE),
        ("max_start_time", ROUND),
        ("base", ROUND),
    )

    def __init__(self, diameter: int, max_start_time: int, base: int):
        self.diameter = diameter
        self.max_start_time = max_start_time
        self.base = base

    def __repr__(self) -> str:
        return "AggStart(D={}, Tmax={}, base={})".format(
            self.diameter, self.max_start_time, self.base
        )


@register(11)
class AggValue(Message):
    """One aggregation send: ``value = 1/sigma_su + psi_s(u)`` (line 12).

    Sent by u to every predecessor in P_s(u) at its scheduled round.
    """

    __slots__ = ("source", "value")

    WIRE_LAYOUT: ClassVar[Tuple[Field, ...]] = (
        ("source", ID),
        ("value", PSI),
    )

    def __init__(self, source: int, value: Any):
        self.source = source
        self.value = value

    def payload_bits(self, wire: WireFormat) -> int:
        # Closed form of the layout walk (hot: O(N^2) deliveries).
        return wire.id_bits + value_bits(self.value)

    def __repr__(self) -> str:
        return "AggValue(s={}, value={!r})".format(self.source, self.value)


#: The betweenness protocol's message types in dispatch-bucket order —
#: the single routing table :mod:`repro.core.node` derives its inbox
#: dispatch from.
PROTOCOL_MESSAGES: Tuple[type, ...] = (
    TreeWave,
    TreeJoin,
    SubtreeCount,
    Announce,
    DfsToken,
    BfsWave,
    DoneReport,
    AggStart,
    AggValue,
)
