"""The typed message codec: tag registry, layouts, frames.

Every concrete protocol message declares a ``WIRE_LAYOUT`` — an ordered
tuple of ``(attribute name, field kind)`` pairs — and registers a 4-bit
type tag via :func:`register`.  The layout is the single source of
truth for the message's bit cost, its encoder and its decoder: a frame
is the type tag followed by the layout's fields in order, every field
either fixed-width (resolved against the :class:`~repro.wire.format.
WireFormat`) or self-delimiting, so concatenated frames need no
padding or out-of-band lengths.

Field kinds
-----------
========== ==========================================================
``ID``      a node identifier, ``wire.id_bits`` bits
``ROUND``   a round stamp, ``wire.round_bits`` bits
``DISTANCE`` a hop distance / diameter, ``wire.distance_bits`` bits
``FLAG``    one bit
``UINT``    an unbounded count, self-delimiting varint
``SIGMA``   a shortest-path count in the run's arithmetic
``PSI``     a dependency value in the run's arithmetic
========== ==========================================================

``SIGMA`` and ``PSI`` widths are type-driven (varints for exact ints
and rationals, ``2L + 1`` bits for L-floats); *decoding* them needs an
arithmetic context to know which representation — and which directed
rounding semantics — the bits carry.

The registry holds at most ``2**TYPE_TAG_BITS`` message types.  Message
classes without a tag can still be *sized* (their ``payload_bits`` is
honest) but cannot appear in an encoded frame, which the simulator's
frame audit turns into a hard error rather than a silent estimate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import FrameChecksumError, WireCodecError
from repro.wire.bits import BitReader, BitWriter, uint_bits
from repro.wire.format import TYPE_TAG_BITS, WireFormat
from repro.wire.values import value_bits, write_value

#: Field kinds for ``WIRE_LAYOUT`` declarations (identity-compared).
ID = "id"
ROUND = "round"
DISTANCE = "distance"
FLAG = "flag"
UINT = "uint"
SIGMA = "sigma"
PSI = "psi"

#: One ``WIRE_LAYOUT`` entry.
Field = Tuple[str, str]

#: tag -> registered message class (populated by :func:`register`).
_BY_TAG: Dict[int, type] = {}


def register(tag: int):
    """Class decorator assigning a stable 4-bit wire tag.

    Tags are part of the wire format (documented in
    ``docs/wire-format.md``); re-using one or running past the 4-bit
    space is a hard error, not a silent reassignment.
    """

    def decorate(cls: type) -> type:
        if not 0 <= tag < (1 << TYPE_TAG_BITS):
            raise WireCodecError(
                "wire tag {} outside the {}-bit tag space".format(
                    tag, TYPE_TAG_BITS
                )
            )
        claimed = _BY_TAG.get(tag)
        if claimed is not None and claimed is not cls:
            raise WireCodecError(
                "wire tag {} already registered to {}".format(
                    tag, claimed.__name__
                )
            )
        cls.wire_tag = tag
        _BY_TAG[tag] = cls
        return cls

    return decorate


def registered_types() -> Dict[int, type]:
    """A copy of the tag registry (tag -> message class)."""
    return dict(_BY_TAG)


def layout_bits(message: Any, wire: WireFormat) -> int:
    """Payload width implied by the message's ``WIRE_LAYOUT``."""
    layout = type(message).WIRE_LAYOUT
    if layout is None:
        raise WireCodecError(
            "{} declares no WIRE_LAYOUT".format(type(message).__name__)
        )
    total = 0
    for name, kind in layout:
        if kind is ID:
            total += wire.id_bits
        elif kind is ROUND:
            total += wire.round_bits
        elif kind is DISTANCE:
            total += wire.distance_bits
        elif kind is FLAG:
            total += 1
        elif kind is UINT:
            total += uint_bits(getattr(message, name))
        elif kind is SIGMA or kind is PSI:
            total += value_bits(getattr(message, name))
        else:
            raise WireCodecError("unknown field kind {!r}".format(kind))
    return total


def encode_message(message: Any, wire: WireFormat, writer: BitWriter) -> None:
    """Append one message frame (type tag + layout fields) to ``writer``."""
    cls = type(message)
    tag = cls.wire_tag
    if tag is None:
        raise WireCodecError(
            "{} has no registered wire tag".format(cls.__name__)
        )
    writer.write(tag, TYPE_TAG_BITS)
    layout = cls.WIRE_LAYOUT
    if layout is None:
        # Opaque payloads (PayloadMessage) write their declared width.
        message._encode_payload(writer, wire)
        return
    for name, kind in layout:
        value = getattr(message, name)
        if kind is ID:
            writer.write(value, wire.id_bits)
        elif kind is ROUND:
            writer.write(value, wire.round_bits)
        elif kind is DISTANCE:
            writer.write(value, wire.distance_bits)
        elif kind is FLAG:
            writer.write(1 if value else 0, 1)
        elif kind is UINT:
            writer.write_uint(value)
        elif kind is SIGMA or kind is PSI:
            write_value(writer, value)
        else:
            raise WireCodecError("unknown field kind {!r}".format(kind))


def decode_message(reader: BitReader, wire: WireFormat, arith=None) -> Any:
    """Decode one message frame; inverse of :func:`encode_message`.

    ``arith`` (an :class:`~repro.arithmetic.context.ArithmeticContext`)
    is required for messages carrying ``SIGMA`` / ``PSI`` fields.
    """
    tag = reader.read(TYPE_TAG_BITS)
    cls = _BY_TAG.get(tag)
    if cls is None:
        raise WireCodecError("unknown wire tag {}".format(tag))
    layout = cls.WIRE_LAYOUT
    if layout is None:
        raise WireCodecError(
            "{} carries an opaque payload and cannot be decoded".format(
                cls.__name__
            )
        )
    args: List[Any] = []
    for _name, kind in layout:
        if kind is ID:
            args.append(reader.read(wire.id_bits))
        elif kind is ROUND:
            args.append(reader.read(wire.round_bits))
        elif kind is DISTANCE:
            args.append(reader.read(wire.distance_bits))
        elif kind is FLAG:
            args.append(bool(reader.read(1)))
        elif kind is UINT:
            args.append(reader.read_uint())
        elif kind is SIGMA:
            if arith is None:
                raise WireCodecError(
                    "decoding {} needs an arithmetic context".format(
                        cls.__name__
                    )
                )
            args.append(arith.read_sigma(reader))
        elif kind is PSI:
            if arith is None:
                raise WireCodecError(
                    "decoding {} needs an arithmetic context".format(
                        cls.__name__
                    )
                )
            args.append(arith.read_psi(reader))
        else:
            raise WireCodecError("unknown field kind {!r}".format(kind))
    return cls(*args)


def encode_frame(messages, wire: WireFormat) -> Tuple[int, int]:
    """Coalesce messages into one per-edge frame: ``(word, bit_length)``.

    The frame is the concatenation of the individual message frames, so
    its length is exactly the sum of the messages'
    :meth:`~repro.wire.messages.Message.bit_size` — the identity the
    simulator's frame audit enforces.
    """
    writer = BitWriter()
    for message in messages:
        encode_message(message, wire, writer)
    return writer.getvalue()


def decode_frame(
    word: int, bit_length: int, wire: WireFormat, arith=None
) -> List[Any]:
    """Decode a coalesced frame back into its message sequence."""
    reader = BitReader(word, bit_length)
    out: List[Any] = []
    while reader.remaining:
        out.append(decode_message(reader, wire, arith))
    return out


# ----------------------------------------------------------------------
# checked frames: CRC-8 protected encode/decode (the fault model's
# corruption-rejecting receive path)
# ----------------------------------------------------------------------
#: Width of the frame checksum field.
CHECKSUM_BITS = 8

#: CRC-8/ATM generator polynomial x^8 + x^2 + x + 1 (0x07) — detects
#: every single-bit error and every burst up to 8 bits, which covers
#: the fault injector's default single-bit flips with certainty.
_CRC8_POLY = 0x07


def _crc8_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = ((crc << 1) ^ _CRC8_POLY) & 0xFF if crc & 0x80 else crc << 1
        table.append(crc)
    return table


_CRC8_TABLE = _crc8_table()


def frame_checksum(word: int, bit_length: int) -> int:
    """CRC-8 of a ``(word, bit_length)`` bit string.

    The bit string is right-padded with zeros to a whole number of
    bytes and prefixed with its bit length (as one varint byte stream)
    so that frames differing only in trailing zero-padding hash
    differently.
    """
    if bit_length < 0 or word < 0 or word >> bit_length:
        raise WireCodecError(
            "word does not fit in the declared {} bits".format(bit_length)
        )
    num_bytes = (bit_length + 7) // 8
    padded = word << (num_bytes * 8 - bit_length)
    data = bit_length.to_bytes(4, "big") + padded.to_bytes(num_bytes, "big")
    crc = 0
    table = _CRC8_TABLE
    for byte in data:
        crc = table[crc ^ byte]
    return crc


def encode_frame_checked(messages, wire: WireFormat) -> Tuple[int, int]:
    """Like :func:`encode_frame`, with a trailing CRC-8 checksum field.

    The checksum models the link-layer frame check sequence of a real
    network stack: it rides *outside* the CONGEST bit accounting (a
    constant per physical frame, like preamble bits), so enabling
    checked frames does not change any billed size — which is what
    keeps zero-fault runs bit-identical to unchecked ones.
    """
    word, bits = encode_frame(messages, wire)
    return (word << CHECKSUM_BITS) | frame_checksum(word, bits), (
        bits + CHECKSUM_BITS
    )


def decode_frame_checked(
    word: int, bit_length: int, wire: WireFormat, arith=None
) -> List[Any]:
    """Verify the trailing CRC-8, then decode the payload frame.

    Verification happens *before* any parsing — a corrupted frame is
    rejected with :class:`~repro.exceptions.FrameChecksumError` without
    ever interpreting its (possibly malformed) contents.
    """
    if bit_length < CHECKSUM_BITS:
        raise WireCodecError(
            "checked frame of {} bits is shorter than its {}-bit "
            "checksum".format(bit_length, CHECKSUM_BITS)
        )
    payload_bits = bit_length - CHECKSUM_BITS
    actual = word & ((1 << CHECKSUM_BITS) - 1)
    payload = word >> CHECKSUM_BITS
    expected = frame_checksum(payload, payload_bits)
    if actual != expected:
        raise FrameChecksumError(expected, actual)
    return decode_frame(payload, payload_bits, wire, arith)


def same_fields(a: Any, b: Any) -> bool:
    """Layout-wise equality of two messages (used by round-trip tests)."""
    if type(a) is not type(b):
        return False
    layout: Optional[Tuple[Field, ...]] = type(a).WIRE_LAYOUT
    if layout is None:
        return False
    return all(getattr(a, name) == getattr(b, name) for name, _kind in layout)
