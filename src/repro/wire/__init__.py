"""repro.wire — the typed message codec and canonical message layer.

One package owns everything about what goes over an edge: the bit-level
primitives (:mod:`~repro.wire.bits`), the per-network size constants
(:mod:`~repro.wire.format`), the arithmetic payload codecs
(:mod:`~repro.wire.values`), the tag registry / frame codec
(:mod:`~repro.wire.codec`) and the message classes themselves
(:mod:`~repro.wire.messages`).  The historical ``repro.congest.message``
and ``repro.core.messages`` modules re-export from here.

See ``docs/wire-format.md`` for the bit layout of every frame.
"""

from repro.wire.bits import BitReader, BitWriter, uint_bits
from repro.wire.codec import (
    DISTANCE,
    FLAG,
    ID,
    PSI,
    ROUND,
    SIGMA,
    UINT,
    CHECKSUM_BITS,
    Field,
    decode_frame,
    decode_frame_checked,
    decode_message,
    encode_frame,
    encode_frame_checked,
    encode_message,
    frame_checksum,
    layout_bits,
    register,
    registered_types,
    same_fields,
)
from repro.wire.format import TYPE_TAG_BITS, WireFormat, int_bits
from repro.wire.messages import (
    PROTOCOL_MESSAGES,
    AggStart,
    AggValue,
    Announce,
    BfsWave,
    DfsToken,
    DoneReport,
    IntMessage,
    Message,
    PayloadMessage,
    SubtreeCount,
    TokenMessage,
    TreeJoin,
    TreeWave,
)
from repro.wire.values import (
    WireValue,
    read_fraction,
    read_int,
    value_bits,
    write_value,
)

__all__ = [
    # bits
    "BitReader",
    "BitWriter",
    "uint_bits",
    # format
    "TYPE_TAG_BITS",
    "WireFormat",
    "int_bits",
    # values
    "WireValue",
    "read_fraction",
    "read_int",
    "value_bits",
    "write_value",
    # codec
    "ID",
    "ROUND",
    "DISTANCE",
    "FLAG",
    "UINT",
    "SIGMA",
    "PSI",
    "Field",
    "register",
    "registered_types",
    "layout_bits",
    "encode_message",
    "decode_message",
    "encode_frame",
    "decode_frame",
    "CHECKSUM_BITS",
    "frame_checksum",
    "encode_frame_checked",
    "decode_frame_checked",
    "same_fields",
    # messages
    "Message",
    "TokenMessage",
    "IntMessage",
    "PayloadMessage",
    "TreeWave",
    "TreeJoin",
    "SubtreeCount",
    "Announce",
    "DfsToken",
    "BfsWave",
    "DoneReport",
    "AggStart",
    "AggValue",
    "PROTOCOL_MESSAGES",
]
