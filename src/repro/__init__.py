"""repro — reproduction of "Nearly Optimal Distributed Algorithm for
Computing Betweenness Centrality" (Hua et al., ICDCS 2016).

The package provides:

* :func:`repro.distributed_betweenness` — the paper's O(N)-round
  CONGEST-model algorithm, run on a synchronous network simulator with
  per-edge bandwidth enforcement.
* :func:`repro.brandes_betweenness` — the centralized Brandes baseline
  (Algorithm 1) with exact-rational and float arithmetic.
* ``repro.graphs`` — graph types, generators and properties.
* ``repro.arithmetic`` — the Section VI L-bit floating point format
  with machine-checked error bounds.
* ``repro.congest`` — the CONGEST simulator itself, reusable for other
  distributed protocols.
* ``repro.lowerbound`` — the Section IX lower-bound gadgets (Figures 2
  and 3) and cut-traffic analysis.

Quickstart::

    from repro import distributed_betweenness, brandes_betweenness
    from repro.graphs import karate_club_graph

    graph = karate_club_graph()
    result = distributed_betweenness(graph)        # L-float arithmetic
    reference = brandes_betweenness(graph)         # centralized Brandes
    print(result.betweenness[0], reference[0])
    print("rounds:", result.rounds, "diameter:", result.diameter)
"""

from repro.arithmetic import (
    ExactContext,
    LFloat,
    LFloatArithmetic,
    Rounding,
    recommended_precision,
)
from repro.centrality import (
    brandes_betweenness,
    weighted_brandes_betweenness,
    closeness_centrality,
    graph_centrality,
    naive_betweenness,
    sampled_betweenness,
    stress_centrality,
)
from repro.congest import Simulator, run_protocol
from repro.core import (
    CompletenessReport,
    DistributedAPSPResult,
    DistributedBCResult,
    ProtocolConfig,
    distributed_apsp,
    distributed_betweenness,
    distributed_closeness,
    distributed_graph_centrality,
    distributed_sampled_betweenness,
    distributed_stress,
    distributed_weighted_betweenness,
)
from repro.exceptions import (
    CheckpointError,
    CongestViolationError,
    FrameChecksumError,
    GraphNotConnectedError,
    LFloatRangeError,
    ProtocolError,
    ReproError,
    SimulationNotTerminatedError,
    SimulationStalledError,
)
from repro.faults import (
    CrashWindow,
    FaultPlan,
    LinkOutage,
    SlowWorker,
    WorkerHang,
)
from repro.graphs import Graph, GraphBuilder, WeightedGraph

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "CompletenessReport",
    "CongestViolationError",
    "CrashWindow",
    "DistributedAPSPResult",
    "DistributedBCResult",
    "ExactContext",
    "FaultPlan",
    "FrameChecksumError",
    "Graph",
    "GraphBuilder",
    "GraphNotConnectedError",
    "LinkOutage",
    "ProtocolConfig",
    "SimulationNotTerminatedError",
    "SimulationStalledError",
    "SlowWorker",
    "WeightedGraph",
    "WorkerHang",
    "LFloat",
    "LFloatArithmetic",
    "LFloatRangeError",
    "ProtocolError",
    "ReproError",
    "Rounding",
    "Simulator",
    "__version__",
    "brandes_betweenness",
    "closeness_centrality",
    "distributed_apsp",
    "distributed_betweenness",
    "distributed_closeness",
    "distributed_graph_centrality",
    "distributed_sampled_betweenness",
    "distributed_stress",
    "distributed_weighted_betweenness",
    "graph_centrality",
    "naive_betweenness",
    "recommended_precision",
    "run_protocol",
    "sampled_betweenness",
    "stress_centrality",
    "weighted_brandes_betweenness",
]
