"""Walking through the Section IX lower-bound constructions.

Builds a Figure 2 (diameter) and a Figure 3 (betweenness) gadget for
matched/unmatched subset families, verifies Lemma 8 and Lemma 9 by
direct measurement, then runs the *actual* distributed BC algorithm
across the gadget's narrow cut to solve set disjointness — the Theorem 6
reduction, live.

Usage::

    python examples/lower_bound_demo.py
"""

from repro.analysis import print_table
from repro.centrality import brandes_betweenness
from repro.graphs import bfs_distances, diameter
from repro.lowerbound import (
    build_bc_gadget,
    build_diameter_gadget,
    disjointness_bits_lower_bound,
    family_pair,
    optimality_gap,
    solve_disjointness_via_bc,
    theorem_lower_bound,
)


def show_diameter_gadget(intersect: bool) -> None:
    x_family, y_family, m = family_pair(
        3, m=6, seed=11, force_intersection=intersect
    )
    gadget = build_diameter_gadget(x_family, y_family, x=10, m=m)
    measured = diameter(gadget.graph)
    rows = []
    for i in range(gadget.n):
        dist = bfs_distances(gadget.graph, gadget.s_prime[i])
        for j in range(gadget.n):
            rows.append(
                [
                    "d(S'{}, T'{})".format(i + 1, j + 1),
                    dist[gadget.t_prime[j]],
                    gadget.expected_distance(i, j),
                    "X{} == Y{}".format(i + 1, j + 1)
                    if gadget.x_family[i] == gadget.y_family[j]
                    else "",
                ]
            )
    print_table(
        ["pair", "measured", "Lemma 8", "match?"],
        rows,
        title="Figure 2 gadget ({}; N={}, x={}): measured diameter {} "
        "(expected {})".format(
            "families intersect" if intersect else "families disjoint",
            gadget.graph.num_nodes,
            gadget.x,
            measured,
            gadget.expected_diameter(),
        ),
    )


def show_bc_gadget(intersect: bool) -> None:
    x_family, y_family, m = family_pair(
        3, m=6, seed=11, force_intersection=intersect
    )
    gadget = build_bc_gadget(x_family, y_family, m)
    bc = brandes_betweenness(gadget.graph, exact=True)
    print_table(
        ["flag", "CB (measured)", "CB (Lemma 9)", "X_i in X∩Y?"],
        [
            [
                "F{}".format(i + 1),
                str(bc[gadget.f[i]]),
                str(gadget.expected_flag_centrality(i)),
                gadget.x_family[i] in set(gadget.y_family),
            ]
            for i in range(gadget.n)
        ],
        title="Figure 3 gadget ({}; N={})".format(
            "families intersect" if intersect else "families disjoint",
            gadget.graph.num_nodes,
        ),
    )


def run_reduction() -> None:
    rows = []
    for intersect in (False, True):
        x_family, y_family, m = family_pair(
            3, m=6, seed=23, force_intersection=intersect
        )
        outcome = solve_disjointness_via_bc(x_family, y_family, m)
        rows.append(
            [
                "yes" if intersect else "no",
                "yes" if outcome.intersects else "no",
                outcome.correct,
                outcome.rounds,
                outcome.cut_width,
                outcome.cut_bits,
            ]
        )
    print_table(
        [
            "planted X∩Y≠∅",
            "protocol says",
            "correct",
            "rounds",
            "cut width",
            "bits across cut",
        ],
        rows,
        title="Theorem 6 reduction: distributed BC answers set disjointness "
        "through an O(log N)-width cut",
    )
    n_info = 1024
    print(
        "Counting argument at scale: deciding disjointness on n={} numbers "
        "needs >= {:.0f} bits (Theorem 4); a width-{} cut carries "
        "O(log N) bits/round, forcing Omega(D + N/log N) rounds — e.g. "
        ">= {:.0f} rounds at N={}, D=10. The paper's algorithm runs in O(N) "
        "rounds, an optimality gap of only ~{:.1f}x = O(log N).".format(
            n_info,
            disjointness_bits_lower_bound(n_info),
            11,
            theorem_lower_bound(n_info, 10),
            n_info,
            optimality_gap(8 * n_info, n_info, 10),
        )
    )


def main() -> None:
    show_diameter_gadget(intersect=True)
    show_diameter_gadget(intersect=False)
    show_bc_gadget(intersect=True)
    show_bc_gadget(intersect=False)
    run_reduction()


if __name__ == "__main__":
    main()
