"""Floating point error analysis: measuring Theorem 1 / Corollary 1.

Runs the distributed algorithm with the Section VI L-bit arithmetic for
a sweep of precisions on a graph with *exponentially many* shortest
paths (a diamond chain, sigma = 2^k) and reports the measured relative
error of every betweenness value against the exact rational reference,
next to the theoretical envelopes.

Usage::

    python examples/error_analysis.py
"""

from repro import brandes_betweenness, distributed_betweenness
from repro.analysis import print_table
from repro.arithmetic import (
    corollary1_error,
    lemma1_bound,
    recommended_precision,
    theorem1_bound,
)
from repro.graphs import diamond_chain_graph, karate_club_graph


def measure(graph, precision):
    result = distributed_betweenness(
        graph, arithmetic="lfloat-{}".format(precision)
    )
    reference = brandes_betweenness(graph, exact=True)
    worst = 0.0
    for v in graph.nodes():
        if reference[v]:
            err = abs(result.betweenness[v] / float(reference[v]) - 1.0)
            worst = max(worst, err)
    return worst, result


def main() -> None:
    for graph in (diamond_chain_graph(10), karate_club_graph()):
        rows = []
        for precision in (8, 12, 16, 20, 24, 28):
            worst, result = measure(graph, precision)
            rows.append(
                [
                    precision,
                    worst,
                    lemma1_bound(precision),
                    theorem1_bound(precision, graph.num_nodes, result.diameter),
                    result.stats.max_edge_bits_per_round,
                ]
            )
        print_table(
            [
                "L (bits)",
                "measured max rel err",
                "per-value bound 2^(1-L)",
                "Theorem 1 envelope",
                "max bits/edge/round",
            ],
            rows,
            title="{} (N={}): error shrinks as 2^-L; messages stay "
            "O(log N)".format(graph.name, graph.num_nodes),
        )

    # Corollary 1: with L = c log2 N the error scales as N^-(c-2).
    rows = []
    for k in (4, 8, 12, 16):
        graph = diamond_chain_graph(k)
        precision = recommended_precision(graph.num_nodes)  # c = 3
        worst, _ = measure(graph, precision)
        rows.append(
            [
                graph.num_nodes,
                precision,
                worst,
                corollary1_error(graph.num_nodes, 3.0),
            ]
        )
    print_table(
        ["N", "L = 3 log2 N", "measured max rel err", "N^-(c-2) scale"],
        rows,
        title="Corollary 1: automatic precision keeps the error polynomially "
        "small in N",
    )


if __name__ == "__main__":
    main()
