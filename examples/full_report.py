"""Generate a full reproduction report: every family, one CSV, one table.

Uses the :class:`repro.analysis.ExperimentRunner` to sweep the protocol
over the library's graph families, collecting round/message/bit metrics
and the per-run maximum relative error against exact Brandes, then
writes ``report.csv`` next to this script and prints the summary table
with per-family linear fits of the Theorem 3 round complexity.

Usage::

    python examples/full_report.py [output.csv]
"""

import sys

from repro.analysis import ExperimentRunner, print_table
from repro.centrality import brandes_betweenness
from repro.graphs import (
    balanced_tree,
    caveman_graph,
    connected_erdos_renyi_graph,
    cycle_graph,
    diamond_chain_graph,
    grid_graph,
    karate_club_graph,
    path_graph,
    watts_strogatz_graph,
)

FAMILIES = {
    "path": [path_graph(n) for n in (16, 32, 48)],
    "cycle": [cycle_graph(n) for n in (16, 32, 48)],
    "grid": [grid_graph(k, k) for k in (3, 4, 5)],
    "tree": [balanced_tree(2, h) for h in (3, 4, 5)],
    "diamonds": [diamond_chain_graph(k) for k in (5, 10, 15)],
    "caveman": [caveman_graph(c, 4) for c in (3, 5, 7)],
    "small-world": [watts_strogatz_graph(n, 4, 0.2, seed=2) for n in (16, 32, 48)],
    "sparse-er": [
        connected_erdos_renyi_graph(n, 4.0 / n, seed=8) for n in (16, 32, 48)
    ],
    "social": [karate_club_graph()],
}


def max_error_metric(result):
    """Max relative error of the L-float run against exact Brandes."""
    reference = brandes_betweenness(result.graph)
    worst = 0.0
    for v in result.graph.nodes():
        if reference[v]:
            worst = max(
                worst, abs(result.betweenness[v] / reference[v] - 1.0)
            )
    return worst


def main(output: str = "report.csv") -> None:
    runner = ExperimentRunner(
        arithmetic="lfloat", metrics={"max_rel_err": max_error_metric}
    )
    for family, graphs in FAMILIES.items():
        runner.run_family(family, graphs)
    print(runner.table())
    print()

    fit_rows = []
    for family in runner.families():
        records = [r for r in runner.records if r.family == family]
        if len(records) >= 2:
            fit = runner.fit_rounds(family)
            fit_rows.append(
                [family, fit.slope, fit.intercept, fit.r_squared]
            )
    print_table(
        ["family", "rounds/N slope", "intercept", "R^2"],
        fit_rows,
        title="Theorem 3 linear fits per family",
    )

    runner.to_csv(output)
    print("wrote {} ({} runs)".format(output, len(runner.records)))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "report.csv")
