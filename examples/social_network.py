"""Social network analysis: who brokers information in the karate club?

The paper's motivation (Section I): centrality indices quantify a node's
importance, and betweenness — the fraction of shortest paths through a
node — identifies *brokers*.  This example computes all four indices the
paper defines (Eqs. 1–4) on Zachary's karate club, entirely with this
library, and contrasts the exact distributed computation with the
classical sampling approximations from the related work.

Usage::

    python examples/social_network.py
"""

from repro import (
    brandes_betweenness,
    closeness_centrality,
    distributed_betweenness,
    graph_centrality,
    sampled_betweenness,
    stress_centrality,
)
from repro.analysis import print_table
from repro.centrality import required_samples
from repro.graphs import karate_club_graph

INSTRUCTOR, ADMIN = 0, 33  # Mr. Hi and John A.


def main() -> None:
    graph = karate_club_graph()

    # ------------------------------------------------------------------
    # All four centrality indices of Section I, exactly.
    # ------------------------------------------------------------------
    betweenness = brandes_betweenness(graph)
    closeness = closeness_centrality(graph)
    graph_c = graph_centrality(graph)
    stress = stress_centrality(graph)

    top = sorted(graph.nodes(), key=lambda v: betweenness[v], reverse=True)[:8]
    print_table(
        ["node", "CB (Eq.4)", "CS (Eq.3)", "CC (Eq.1)", "CG (Eq.2)", "degree"],
        [
            [v, betweenness[v], stress[v], closeness[v], graph_c[v],
             graph.degree(v)]
            for v in top
        ],
        title="Karate club: top nodes by betweenness "
        "(N={}, M={})".format(graph.num_nodes, graph.num_edges),
    )

    faction_leaders = {INSTRUCTOR, ADMIN}
    print(
        "The two faction leaders (nodes {} and {}) rank {} by betweenness "
        "— the split of the club follows its brokers.\n".format(
            INSTRUCTOR,
            ADMIN,
            sorted(top.index(v) + 1 for v in faction_leaders if v in top),
        )
    )

    # ------------------------------------------------------------------
    # Exact distributed computation: the paper's contribution.
    # ------------------------------------------------------------------
    result = distributed_betweenness(graph)
    worst = max(
        abs(result.betweenness[v] - betweenness[v]) / (betweenness[v] or 1.0)
        for v in graph.nodes()
    )
    print(
        "Distributed run: {} rounds, diameter {}, {} total messages, "
        "worst relative deviation from exact {:.2e}.\n".format(
            result.rounds,
            result.diameter,
            result.stats.message_count,
            worst,
        )
    )

    # ------------------------------------------------------------------
    # Sampling approximations (related work [11]-[13]) for contrast.
    # ------------------------------------------------------------------
    rows = []
    for k in (4, 8, 16, 34):
        estimate = sampled_betweenness(graph, k, seed=42)
        err = max(
            abs(estimate[v] - betweenness[v])
            for v in graph.nodes()
        )
        spearman_top = sorted(
            graph.nodes(), key=lambda v: estimate[v], reverse=True
        )[:3]
        rows.append([k, err, str(spearman_top)])
    print_table(
        ["pivots k", "max abs error", "top-3 by estimate"],
        rows,
        title="Brandes–Pich sampling vs exact (the paper computes exactly "
        "instead; eps=0.1, delta=0.1 would need k={})".format(
            required_samples(graph.num_nodes, 0.1, 0.1)
        ),
    )


if __name__ == "__main__":
    main()
