"""Quickstart: distributed betweenness centrality in a few lines.

Runs the paper's O(N)-round CONGEST algorithm on the 5-node example of
Figure 1 and on Zachary's karate club, and compares the output with the
centralized Brandes baseline.

Usage::

    python examples/quickstart.py
"""

from repro import brandes_betweenness, distributed_betweenness
from repro.analysis import print_table
from repro.graphs import figure1_graph, karate_club_graph


def main() -> None:
    # ------------------------------------------------------------------
    # The paper's running example (Figure 1): v1..v5 are nodes 0..4.
    # ------------------------------------------------------------------
    graph = figure1_graph()
    result = distributed_betweenness(graph, arithmetic="exact")
    reference = brandes_betweenness(graph, exact=True)

    print_table(
        ["node (paper name)", "distributed CB", "Brandes CB", "T_s"],
        [
            [
                "v{}".format(v + 1),
                str(result.betweenness_exact[v]),
                str(reference[v]),
                result.start_times[v],
            ]
            for v in graph.nodes()
        ],
        title="Figure 1 example — exact arithmetic "
        "(rounds={}, diameter={})".format(result.rounds, result.diameter),
    )
    assert result.betweenness_exact == reference
    assert str(result.betweenness_exact[1]) == "7/2"  # the paper's CB(v2)

    # ------------------------------------------------------------------
    # A real social network, with the CONGEST-legal L-float arithmetic.
    # ------------------------------------------------------------------
    club = karate_club_graph()
    distributed = distributed_betweenness(club)  # L chosen automatically
    exact = brandes_betweenness(club, exact=True)

    top = sorted(
        club.nodes(), key=lambda v: distributed.betweenness[v], reverse=True
    )[:5]
    print_table(
        ["rank", "node", "distributed CB", "exact CB", "rel. error"],
        [
            [
                rank + 1,
                v,
                distributed.betweenness[v],
                float(exact[v]),
                abs(distributed.betweenness[v] / float(exact[v]) - 1.0),
            ]
            for rank, v in enumerate(top)
        ],
        title="Karate club — top brokers under {} arithmetic "
        "(rounds={}, max bits/edge/round={})".format(
            distributed.arithmetic,
            distributed.rounds,
            distributed.stats.max_edge_bits_per_round,
        ),
    )
    print(
        "The protocol used {} rounds on N={} nodes (Theorem 3: O(N)), and "
        "no edge ever carried more than {} bits in a round (CONGEST).".format(
            distributed.rounds,
            club.num_nodes,
            distributed.stats.max_edge_bits_per_round,
        )
    )


if __name__ == "__main__":
    main()
