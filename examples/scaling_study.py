"""Round-complexity scaling study: Theorem 3's O(N) in practice.

Runs the full protocol on growing instances of four graph families with
very different diameters and densities, fits rounds against N, and
reports the per-family linear-fit constants and the log-log exponent
(which must hover around 1 for O(N)).

Usage::

    python examples/scaling_study.py
"""

from repro import distributed_betweenness
from repro.analysis import linear_fit, power_law_exponent, print_table
from repro.graphs import (
    balanced_tree,
    connected_erdos_renyi_graph,
    cycle_graph,
    path_graph,
)
from repro.lowerbound import theorem_lower_bound


def family_instances():
    yield "path", [path_graph(n) for n in (16, 32, 48, 64)]
    yield "cycle", [cycle_graph(n) for n in (16, 32, 48, 64)]
    yield "binary tree", [balanced_tree(2, h) for h in (3, 4, 5)]
    yield "sparse ER", [
        connected_erdos_renyi_graph(n, 4.0 / n, seed=5) for n in (16, 32, 48, 64)
    ]


def main() -> None:
    summary_rows = []
    for name, graphs in family_instances():
        rows = []
        ns, rounds = [], []
        for graph in graphs:
            result = distributed_betweenness(graph)
            ns.append(graph.num_nodes)
            rounds.append(result.rounds)
            rows.append(
                [
                    graph.num_nodes,
                    result.diameter,
                    result.rounds,
                    result.rounds / graph.num_nodes,
                    theorem_lower_bound(graph.num_nodes, result.diameter),
                ]
            )
        print_table(
            ["N", "D", "rounds", "rounds/N", "Ω(D + N/log N) bound"],
            rows,
            title="{} family".format(name),
        )
        fit = linear_fit(ns, rounds)
        exponent = power_law_exponent(ns, rounds)
        summary_rows.append(
            [name, fit.slope, fit.intercept, fit.r_squared, exponent]
        )
    print_table(
        ["family", "slope (rounds/N)", "intercept", "R^2", "log-log exponent"],
        summary_rows,
        title="Theorem 3 check: rounds grow linearly in N "
        "(exponent ≈ 1, high R^2)",
    )


if __name__ == "__main__":
    main()
