"""Watch the algorithm run: a round-by-round anatomy of the protocol.

Attaches a tracer to a full run on the karate club, prints the phase
timeline (tree construction → census → pipelined BFS counting →
completion convergecast → scheduled aggregation), the per-message-type
totals, and drills into one node's ledger to show exactly what
Algorithm 2 taught it.

Usage::

    python examples/protocol_anatomy.py
"""

from repro.analysis import print_table
from repro.congest import Tracer
from repro.core import distributed_betweenness
from repro.graphs import karate_club_graph


def main() -> None:
    graph = karate_club_graph()
    tracer = Tracer()
    result = distributed_betweenness(graph, tracer=tracer)

    print(
        "Full run on {}: {} rounds, {} messages, {} bits total.\n".format(
            graph.name,
            result.rounds,
            result.stats.message_count,
            result.stats.bit_count,
        )
    )

    print("Protocol timeline (each row = one message type):\n")
    print(tracer.timeline(width=70))
    print()

    summary = tracer.summary()
    print_table(
        ["message type", "count", "total bits", "active rounds"],
        [
            [
                name,
                stats["count"],
                stats["bits"],
                "{}..{}".format(stats["first_round"], stats["last_round"]),
            ]
            for name, stats in summary.items()
        ],
        title="Traffic by message type",
    )

    # ------------------------------------------------------------------
    # One node's view: the ledger L_v of Algorithm 2.
    # ------------------------------------------------------------------
    node = result.nodes[32]
    rows = []
    for record in sorted(node.ledger, key=lambda r: r.source)[:8]:
        rows.append(
            [
                record.source,
                record.start_time,
                record.dist,
                node.arith.to_float(record.sigma),
                str(record.preds),
                record.sending_time(result.diameter),
            ]
        )
    print_table(
        ["source s", "T_s", "d(s,v)", "sigma_sv", "P_s(v)",
         "send at T_s + D - d"],
        rows,
        title="Node v={}'s ledger L_v (first 8 of {} sources; D={})".format(
            node.node_id, len(node.ledger), result.diameter
        ),
    )

    print(
        "Counting phase carried {} BFS-wave messages (= 2MN = {}), and the\n"
        "aggregation phase sent exactly one value per (node, source) pair\n"
        "along each predecessor link — Lemma 4 guaranteed none of them ever\n"
        "shared an edge in a round.".format(
            summary["BfsWave"]["count"],
            2 * graph.num_edges * graph.num_nodes,
        )
    )


if __name__ == "__main__":
    main()
