"""Sensor-network relay planning with in-network centrality computation.

A wireless sensor field is the canonical deployment story for
*distributed* centrality: no node knows the topology, messages are tiny
(CONGEST), and the network must discover its own relay bottlenecks.
This example builds a random geometric graph (nodes = sensors, edges =
radio range), runs the paper's algorithm inside the simulated network,
and reports:

* the relay nodes whose failure would re-route the most traffic
  (highest betweenness),
* the best sink placements (highest closeness — computed from the same
  counting phase at zero extra cost),
* the CONGEST compliance profile of the run.

Usage::

    python examples/sensor_network.py [num_sensors] [radio_range]
"""

import sys

from repro import distributed_betweenness
from repro.analysis import print_table
from repro.core import distributed_apsp
from repro.graphs import ensure_connected, random_geometric_graph


def main(num_sensors: int = 60, radio_range: float = 0.22) -> None:
    field = ensure_connected(
        random_geometric_graph(num_sensors, radio_range, seed=7), seed=7
    )
    print(
        "Sensor field: {} sensors, {} radio links, connected.\n".format(
            field.num_nodes, field.num_edges
        )
    )

    # ------------------------------------------------------------------
    # In-network betweenness: which relays are load-bearing?
    # ------------------------------------------------------------------
    result = distributed_betweenness(field)
    ranked = sorted(
        field.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    print_table(
        ["relay", "betweenness", "degree"],
        [[v, result.betweenness[v], field.degree(v)] for v in ranked[:6]],
        title="Relay bottlenecks (highest betweenness)",
    )

    # ------------------------------------------------------------------
    # Sink placement from the same APSP knowledge (Eqs. 1-2).
    # ------------------------------------------------------------------
    apsp = distributed_apsp(field)
    closeness = apsp.closeness()
    sinks = sorted(field.nodes(), key=lambda v: closeness[v], reverse=True)
    print_table(
        ["candidate sink", "closeness", "eccentricity"],
        [
            [v, closeness[v], apsp.eccentricities()[v]]
            for v in sinks[:5]
        ],
        title="Sink placement (highest closeness; free from the counting "
        "phase)",
    )

    # ------------------------------------------------------------------
    # What did the network pay for this knowledge?
    # ------------------------------------------------------------------
    summary = result.stats.summary()
    print_table(
        ["metric", "value"],
        [
            ["synchronous rounds", result.rounds],
            ["rounds / N (Theorem 3 constant)", result.rounds / field.num_nodes],
            ["network diameter (self-measured)", result.diameter],
            ["total messages", summary["messages"]],
            ["total bits", summary["bits"]],
            ["max bits per link per round", summary["max_edge_bits_per_round"]],
            ["arithmetic", result.arithmetic],
        ],
        title="Cost profile of the distributed computation",
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    r = float(sys.argv[2]) if len(sys.argv) > 2 else 0.22
    main(n, r)
