"""Weighted betweenness on a transit network via virtual-node subdivision.

The paper's conclusion notes that no efficient distributed BC algorithm
exists for weighted graphs, and suggests Nanongkai's virtual-node trick.
This example models a small transit network (edge weight = travel time),
runs the subdivision-based distributed computation, and cross-checks it
against the centralized weighted Brandes reference — then shows how the
stress variant (footnote 3) ranks the same hubs by raw path counts.

Usage::

    python examples/weighted_network.py
"""

from repro import (
    distributed_stress,
    distributed_weighted_betweenness,
    weighted_brandes_betweenness,
)
from repro.analysis import print_table
from repro.graphs import WeightedGraph, subdivide

# A small hub-and-spoke transit map: two hubs (1, 4) joined by a fast
# trunk, a slow scenic route (0-5), and local spurs.
STATIONS = [
    "Airport", "Central", "Harbor", "University", "Junction", "Hills",
    "Market", "Stadium",
]
LINKS = [
    (0, 1, 3),  # Airport—Central trunk
    (1, 2, 2),  # Central—Harbor
    (1, 3, 1),  # Central—University
    (1, 4, 2),  # Central—Junction trunk
    (4, 5, 4),  # Junction—Hills (slow climb)
    (4, 6, 1),  # Junction—Market
    (6, 7, 2),  # Market—Stadium
    (0, 5, 9),  # Airport—Hills scenic route
    (2, 6, 5),  # Harbor—Market ferry
]


def main() -> None:
    network = WeightedGraph(len(STATIONS), LINKS, name="transit")
    sub = subdivide(network)
    print(
        "Transit network: {} stations, {} links, total travel time {} "
        "-> subdivision with {} virtual way-points.\n".format(
            network.num_nodes,
            network.num_edges,
            network.total_weight(),
            sub.num_virtual,
        )
    )

    result = distributed_weighted_betweenness(network)
    reference = weighted_brandes_betweenness(network, exact=True)
    ranked = sorted(
        network.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    print_table(
        ["station", "weighted CB (distributed)", "weighted Brandes", "exact?"],
        [
            [
                STATIONS[v],
                result.betweenness[v],
                float(reference[v]),
                result.betweenness_exact[v] == reference[v],
            ]
            for v in ranked
        ],
        title="Interchange load (weighted betweenness) — rounds={} on the "
        "{}-node subdivision".format(
            result.rounds, result.subdivision.graph.num_nodes
        ),
    )

    # Stress centrality (footnote 3): raw shortest-path counts through
    # each station, on the unit-weight topology.
    unit = WeightedGraph(
        len(STATIONS), [(u, v, 1) for u, v, _ in LINKS], name="transit-hops"
    )
    stress = distributed_stress(subdivide(unit).graph)
    print_table(
        ["station", "stress (hop-count topology)"],
        sorted(
            ((STATIONS[v], stress.stress[v]) for v in network.nodes()),
            key=lambda row: row[1],
            reverse=True,
        ),
        title="Stress centrality when every link counts one hop",
    )

    heaviest = STATIONS[ranked[0]]
    print(
        "'{}' carries the most weighted shortest-path traffic; removing it "
        "would re-route the largest share of journeys.".format(heaviest)
    )


if __name__ == "__main__":
    main()
