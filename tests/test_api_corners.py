"""Coverage for remaining API corners across subsystems."""

import operator

import pytest

from repro.analysis import ExperimentRunner
from repro.congest import Tracer
from repro.core import (
    distributed_apsp,
    distributed_betweenness,
    distributed_closeness,
    distributed_graph_centrality,
)
from repro.core.messages import BfsWave, DfsToken
from repro.graphs import (
    WeightedGraph,
    grid_graph,
    karate_club_graph,
    path_graph,
    star_graph,
)


class TestResultObjectCorners:
    def test_dependency_unknown_node(self):
        result = distributed_betweenness(path_graph(4), arithmetic="exact")
        with pytest.raises(KeyError):
            result.dependency(0, 99)

    def test_dependency_excludes_self_source(self):
        result = distributed_betweenness(path_graph(4), arithmetic="exact")
        deps = result.nodes[1].aggregation.dependencies()
        assert 1 not in deps  # a node has no dependency record on itself

    def test_lfloat_run_has_no_exact_map(self):
        result = distributed_betweenness(path_graph(4), arithmetic="lfloat")
        assert result.betweenness_exact is None
        assert all(isinstance(v, float) for v in result.betweenness.values())

    def test_normalized_star(self):
        result = distributed_betweenness(star_graph(7), arithmetic="exact")
        assert result.normalized()[0] == pytest.approx(1.0)

    def test_stats_repr(self):
        result = distributed_betweenness(path_graph(4))
        assert "rounds" in repr(result.stats)


class TestCountingOnlyWrappers:
    def test_closeness_kwargs_passthrough(self):
        values = distributed_closeness(path_graph(5), root=2)
        from repro.centrality import closeness_centrality

        reference = closeness_centrality(path_graph(5))
        for v in range(5):
            assert values[v] == pytest.approx(reference[v])

    def test_graph_centrality_wrapper(self):
        values = distributed_graph_centrality(star_graph(5))
        assert values[0] == pytest.approx(1.0)

    def test_apsp_result_fields(self):
        result = distributed_apsp(grid_graph(3, 3))
        assert result.diameter == 4
        assert len(result.distances) == 9
        assert result.stats.rounds == result.rounds


class TestRunnerOverrides:
    def test_custom_run_callable(self):
        runner = ExperimentRunner(run=lambda graph: distributed_apsp(graph))
        records = runner.run_family("apsp", [path_graph(6)])
        assert records[0].rounds > 0
        # counting-only runs report the default arithmetic label
        assert records[0].arithmetic == "lfloat"

    def test_fit_requires_two_samples(self):
        runner = ExperimentRunner(arithmetic="exact")
        runner.run_family("one", [path_graph(5)])
        with pytest.raises(ValueError):
            runner.fit_rounds("one")


class TestTracerFilters:
    def test_combined_type_and_node_filter(self):
        tracer = Tracer(message_types=(BfsWave,), nodes={0, 1})
        distributed_betweenness(path_graph(5), tracer=tracer)
        for event in tracer.deliveries():
            assert event.message_type == "BfsWave"
            assert event.sender in {0, 1} or event.receiver in {0, 1}

    def test_counts_per_round_all_types(self):
        tracer = Tracer(message_types=(DfsToken,))
        distributed_betweenness(path_graph(4), tracer=tracer)
        total = sum(tracer.counts_per_round().values())
        assert total == len(tracer)


class TestWeightedGraphCorners:
    def test_repr(self):
        wg = WeightedGraph(3, [(0, 1, 2)], name="tiny")
        assert "tiny" in repr(wg)
        assert "N=3" in repr(wg)

    def test_empty_weighted_graph(self):
        wg = WeightedGraph(0)
        assert wg.total_weight() == 0

    def test_negative_node_count(self):
        from repro.exceptions import EmptyGraphError

        with pytest.raises(EmptyGraphError):
            WeightedGraph(-2)


class TestConvergecastOperators:
    def test_operator_add_matches_python_sum(self):
        from repro.congest import make_bfs_tree_factory, make_convergecast_factory, run_protocol

        graph = karate_club_graph()
        tree_nodes, _ = run_protocol(graph, make_bfs_tree_factory(0))
        parents = {n.node_id: n.parent for n in tree_nodes}
        children = {n.node_id: n.children for n in tree_nodes}
        values = {v: v * v for v in graph.nodes()}
        nodes, _ = run_protocol(
            graph,
            make_convergecast_factory(
                parents, children, values, combine=operator.add
            ),
        )
        assert nodes[0].result == sum(values.values())
