"""Bulk-engine unit tests: int64 L-float kernels, capability envelope,
protocol-variant equivalence, ledger laziness, CLI resolution.

The cross-engine differential matrix lives in
``test_engine_equivalence.py``; this file covers the bulk engine's own
moving parts — the vectorized arithmetic kernels against the scalar
:class:`~repro.arithmetic.lfloat.LFloat` reference, the dispatcher's
capability rejections with their reasons, and the lazily materialized
node ledgers the fast path leaves behind.
"""

import pickle
import random

import pytest

np = pytest.importorskip("numpy")

from repro.arithmetic import make_context
from repro.arithmetic.lfloat import LFloat, Rounding
from repro.congest import Simulator
from repro.core import distributed_betweenness
from repro.core.config import ProtocolConfig
from repro.core.node import make_node_factory
from repro.engines import bulk_capability, reset_probe
from repro.engines.lfmath import bit_length, lf_add, lf_mul, lf_reciprocal
from repro.exceptions import EngineCapabilityError
from repro.graphs import (
    Graph,
    balanced_tree,
    connected_erdos_renyi_graph,
    cycle_graph,
    figure1_graph,
    path_graph,
)


# ----------------------------------------------------------------------
# lfmath kernels vs the scalar LFloat reference (randomized)
# ----------------------------------------------------------------------
def _random_lfloats(rng, L, count, lim=None):
    """Random valid L-floats: normalized mantissa or zero, mixed signs
    of exponent, in (mantissa, exponent) lanes plus scalar twins."""
    ms, es, scalars = [], [], []
    # Exponents stay clear of the +/-(2**L - 1) legality bound so that
    # results (add shifts by one, reciprocal negates and adds one) stay
    # representable too.  Callers combining two operands (mul sums the
    # exponents) pass a tighter lim.
    if lim is None:
        lim = min(20, (1 << L) - 2)
    for _ in range(count):
        if rng.random() < 0.1:
            m, e = 0, 0
        else:
            m = rng.randrange(1 << (L - 1), 1 << L)
            e = rng.randrange(-lim, lim + 1)
        ms.append(m)
        es.append(e)
        scalars.append(LFloat(m, e, L))
    return np.array(ms, dtype=np.int64), np.array(es, dtype=np.int64), scalars


@pytest.mark.parametrize("L", [4, 8, 17, 30])
@pytest.mark.parametrize("mode", list(Rounding))
def test_lf_mul_matches_scalar(L, mode):
    rng = random.Random(1000 + L)
    lim = min(10, ((1 << L) - 2) // 2)
    ma, ea, sa = _random_lfloats(rng, L, 200, lim=lim)
    mb, eb, sb = _random_lfloats(rng, L, 200, lim=lim)
    rm, re = lf_mul(ma, ea, mb, eb, L, mode.value)
    for i in range(len(sa)):
        want = sa[i].mul(sb[i], mode)
        assert (int(rm[i]), int(re[i])) == (want.mantissa, want.exponent), i


@pytest.mark.parametrize("L", [4, 8, 17, 30])
@pytest.mark.parametrize("mode", list(Rounding))
def test_lf_add_matches_scalar(L, mode):
    rng = random.Random(2000 + L)
    ma, ea, sa = _random_lfloats(rng, L, 200)
    mb, eb, sb = _random_lfloats(rng, L, 200)
    # Force exponent ties into the sample: the adder breaks them by
    # operand order, the classic off-by-one spot.
    ea[:40] = eb[:40]
    sa[:40] = [
        LFloat(int(m), int(e), L) for m, e in zip(ma[:40], ea[:40])
    ]
    rm, re = lf_add(ma, ea, mb, eb, L, mode.value)
    for i in range(len(sa)):
        want = sa[i].add(sb[i], mode)
        assert (int(rm[i]), int(re[i])) == (want.mantissa, want.exponent), i


@pytest.mark.parametrize("L", [4, 8, 17, 30])
def test_lf_reciprocal_matches_scalar(L):
    rng = random.Random(3000 + L)
    m, e, scalars = _random_lfloats(rng, L, 200)
    nonzero = m != 0
    m, e = m[nonzero], e[nonzero]
    scalars = [s for s in scalars if s.mantissa != 0]
    rm, re = lf_reciprocal(m, e, L)
    for i, s in enumerate(scalars):
        want = s.reciprocal(Rounding.FLOOR)
        assert (int(rm[i]), int(re[i])) == (want.mantissa, want.exponent), i


def test_bit_length_matches_int_bit_length():
    values = np.array(
        [0, 1, 2, 3, 4, 7, 8, 255, 256, (1 << 31) - 1, 1 << 31, (1 << 62) - 1],
        dtype=np.int64,
    )
    got = bit_length(values)
    want = [int(v).bit_length() for v in values]
    assert got.tolist() == want


# ----------------------------------------------------------------------
# capability envelope: every rejection carries a usable reason
# ----------------------------------------------------------------------
def _expect_rejection(match, graph=None, **kwargs):
    with pytest.raises(EngineCapabilityError, match=match):
        distributed_betweenness(
            graph if graph is not None else figure1_graph(),
            arithmetic=kwargs.pop("arithmetic", "lfloat"),
            engine="bulk",
            **kwargs
        )


def test_bulk_rejects_exact_arithmetic():
    _expect_rejection("L-float", arithmetic="exact")


def test_bulk_rejects_oversized_precision():
    _expect_rejection(r"precision 31", arithmetic="lfloat-31")


def test_bulk_rejects_fault_injection():
    from repro.faults import FaultPlan

    _expect_rejection("fault injection", faults=FaultPlan(drop_rate=0.5))


def test_bulk_rejects_single_node_graph():
    arith = make_context("lfloat", 1)
    with pytest.raises(EngineCapabilityError, match="two nodes"):
        Simulator(Graph(1, name="k1"), make_node_factory(0, arith), engine="bulk")


def test_bulk_rejects_disconnected_graph():
    # The pipeline validates connectivity before building a simulator, so
    # hit the dispatcher's own check through the Simulator constructor.
    graph = Graph(4, [(0, 1), (2, 3)], name="two-islands")
    arith = make_context("lfloat", 4)
    with pytest.raises(EngineCapabilityError, match="not connected"):
        Simulator(graph, make_node_factory(0, arith), engine="bulk")


def test_bulk_rejects_out_of_range_sources():
    _expect_rejection(
        "outside the graph",
        config=ProtocolConfig(sources=frozenset({0, 99})),
    )


def test_bulk_rejects_non_protocol_nodes():
    from repro.congest import NodeAlgorithm

    class _Custom(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            self.done = True

    with pytest.raises(EngineCapabilityError, match="BetweennessNode"):
        Simulator(path_graph(3), _Custom, engine="bulk")


def test_auto_reports_capable_for_stock_runs():
    arith = make_context("lfloat", 5)
    sim = Simulator(path_graph(5), make_node_factory(0, arith), engine="sweep")
    capable, reason = bulk_capability(sim)
    assert capable, reason


# ----------------------------------------------------------------------
# protocol variants through the bulk schedule
# ----------------------------------------------------------------------
def _fp(result):
    return (
        sorted(result.betweenness.items()),
        result.diameter,
        result.rounds,
        sorted(result.start_times.items()),
        result.stats.summary(),
        result.stats.round_series,
    )


VARIANT_GRAPHS = [
    figure1_graph(),
    balanced_tree(2, 3),
    connected_erdos_renyi_graph(16, 0.2, seed=2),
]


@pytest.mark.parametrize("graph", VARIANT_GRAPHS, ids=lambda g: g.name)
@pytest.mark.parametrize(
    "variant",
    ["stress", "subset-sources", "no-aggregate", "cut", "root-shift"],
)
def test_bulk_matches_sweep_on_variants(graph, variant):
    n = graph.num_nodes
    kwargs = {
        "stress": {"config": ProtocolConfig(unit="stress")},
        "subset-sources": {
            "config": ProtocolConfig(sources=frozenset({0, n // 2, n - 1}))
        },
        "no-aggregate": {"config": ProtocolConfig(aggregate=False)},
        "cut": {"cut": set(range(n // 2))},
        "root-shift": {"root": 3},
    }[variant]
    runs = {
        engine: _fp(
            distributed_betweenness(
                graph, arithmetic="lfloat", engine=engine, **kwargs
            )
        )
        for engine in ("sweep", "bulk")
    }
    assert runs["sweep"] == runs["bulk"]


# ----------------------------------------------------------------------
# lazy ledgers: the fast path defers per-source record construction
# ----------------------------------------------------------------------
def test_bulk_ledger_is_lazy_then_complete():
    graph = cycle_graph(8)
    bulk = distributed_betweenness(graph, arithmetic="lfloat", engine="bulk")
    sweep = distributed_betweenness(graph, arithmetic="lfloat", engine="sweep")
    for b_node, s_node in zip(bulk.nodes, sweep.nodes):
        assert sorted(b_node.ledger.sources()) == sorted(s_node.ledger.sources())
        for s in s_node.ledger.sources():
            b_rec, s_rec = b_node.ledger.get(s), s_node.ledger.get(s)
            assert (b_rec.start_time, b_rec.dist, tuple(b_rec.preds)) == (
                s_rec.start_time,
                s_rec.dist,
                tuple(s_rec.preds),
            )
            assert repr(b_rec.sigma) == repr(s_rec.sigma)
            assert repr(b_rec.psi) == repr(s_rec.psi)


def test_bulk_ledger_survives_pickling():
    graph = figure1_graph()
    result = distributed_betweenness(graph, arithmetic="lfloat", engine="bulk")
    node = result.nodes[2]
    clone = pickle.loads(pickle.dumps(node.ledger))
    assert sorted(clone.sources()) == sorted(node.ledger.sources())
    for s in node.ledger.sources():
        assert clone.get(s).dist == node.ledger.get(s).dist
        assert repr(clone.get(s).sigma) == repr(node.ledger.get(s).sigma)


# ----------------------------------------------------------------------
# CLI: the report prints the engine that actually ran
# ----------------------------------------------------------------------
def test_cli_report_shows_resolved_engine(capsys):
    from repro.cli import main

    reset_probe()
    assert main(["report", "--graph", "figure1"]) == 0
    out = capsys.readouterr().out
    assert "engine=bulk" in out


def test_cli_engine_choices_include_auto():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["bc", "--graph", "figure1", "--engine", "warp"])
