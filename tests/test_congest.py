"""Tests for the CONGEST simulator: semantics, budgets, statistics."""

import pytest

from repro.congest import (
    IntMessage,
    NodeAlgorithm,
    PayloadMessage,
    Simulator,
    TokenMessage,
    TYPE_TAG_BITS,
    WireFormat,
    int_bits,
    run_protocol,
)
from repro.exceptions import (
    CongestViolationError,
    SimulationNotTerminatedError,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    eccentricity,
    karate_club_graph,
    path_graph,
    star_graph,
)


class FloodNode(NodeAlgorithm):
    """Classic flood: node 0 starts; everyone records first-hear round."""

    def __init__(self, node_id, neighbors):
        super().__init__(node_id, neighbors)
        self.heard_round = None

    def on_round(self, ctx, inbox):
        if ctx.round_number == 0 and self.node_id == 0:
            self.heard_round = 0
            ctx.broadcast(TokenMessage("flood"))
            self.done = True
        if self.heard_round is None and inbox:
            self.heard_round = ctx.round_number
            ctx.broadcast(TokenMessage("flood"))
            self.done = True


class ChattyNode(NodeAlgorithm):
    """Sends one oversized message — must trip strict mode."""

    def on_round(self, ctx, inbox):
        if ctx.round_number == 0 and self.neighbors:
            ctx.send(self.neighbors[0], PayloadMessage("blob", bits=10**6))
        self.done = True


class SilentNode(NodeAlgorithm):
    """Never terminates — must trip the round limit."""

    def on_round(self, ctx, inbox):
        pass


class CounterNode(NodeAlgorithm):
    """Each node sends its id to every neighbor once, then sums inbox."""

    def __init__(self, node_id, neighbors):
        super().__init__(node_id, neighbors)
        self.total = 0

    def on_round(self, ctx, inbox):
        if ctx.round_number == 0:
            ctx.broadcast(IntMessage(self.node_id))
        for sender, message in inbox:
            assert isinstance(message, IntMessage)
            assert message.value == sender
            self.total += message.value
        if ctx.round_number >= 1:
            self.done = True


class TestFlooding:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(8), cycle_graph(9), star_graph(6), complete_graph(5),
         karate_club_graph()],
        ids=lambda g: g.name,
    )
    def test_flood_rounds_equal_distance(self, graph):
        nodes, stats = run_protocol(graph, FloodNode)
        from repro.graphs import bfs_distances

        dist = bfs_distances(graph, 0)
        for node in nodes:
            assert node.heard_round == dist[node.node_id]
        # the run ends one round after the last broadcast fades
        assert stats.rounds <= eccentricity(graph, 0) + 2


class TestBudgets:
    def test_strict_violation_raises(self):
        with pytest.raises(CongestViolationError) as err:
            run_protocol(path_graph(3), ChattyNode, strict=True)
        assert err.value.bits_used >= 10**6
        assert "CONGEST violation" in str(err.value)

    def test_lenient_mode_allows(self):
        nodes, stats = run_protocol(path_graph(3), ChattyNode, strict=False)
        assert stats.max_edge_bits_per_round >= 10**6

    def test_budget_scales_with_factor(self):
        sim_small = Simulator(path_graph(4), FloodNode, congest_factor=1)
        sim_large = Simulator(path_graph(4), FloodNode, congest_factor=64)
        assert sim_large.bit_budget == 64 * sim_small.bit_budget

    def test_round_limit(self):
        with pytest.raises(SimulationNotTerminatedError):
            run_protocol(path_graph(3), SilentNode, max_rounds=10)


class TestDelivery:
    def test_messages_delivered_next_round_sorted(self):
        nodes, _stats = run_protocol(cycle_graph(5), CounterNode)
        for node in nodes:
            assert node.total == sum(node.neighbors)

    def test_send_to_non_neighbor_rejected(self):
        class BadNode(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if self.node_id == 0:
                    ctx.send(2, TokenMessage())
                self.done = True

        with pytest.raises(ValueError):
            run_protocol(path_graph(3), BadNode)

    def test_deterministic_stats(self):
        _n1, s1 = run_protocol(karate_club_graph(), FloodNode)
        _n2, s2 = run_protocol(karate_club_graph(), FloodNode)
        assert s1.summary() == s2.summary()


class TestStats:
    def test_bit_accounting(self):
        nodes, stats = run_protocol(path_graph(2), CounterNode)
        # two IntMessages: value 0 costs a 1-bit varint, value 1 a
        # 4-bit varint, each after a TYPE_TAG
        assert stats.message_count == 2
        assert stats.bit_count == (TYPE_TAG_BITS + 1) + (TYPE_TAG_BITS + 4)

    def test_cut_tracking(self):
        graph = path_graph(4)
        sim = Simulator(graph, FloodNode, cut={0, 1})
        stats = sim.run()
        # flood crosses edge (1, 2) exactly twice (wave + echo back)
        assert stats.cut is not None
        assert stats.cut.messages == 2
        assert stats.cut.bits == 2 * TYPE_TAG_BITS
        assert stats.cut.max_bits_in_round() == TYPE_TAG_BITS
        assert "cut_bits" in stats.summary()

    def test_worst_edge_recorded(self):
        _nodes, stats = run_protocol(star_graph(4), FloodNode)
        assert stats.worst_edge is not None

    def test_round_series_length(self):
        _nodes, stats = run_protocol(path_graph(5), FloodNode)
        assert len(stats.round_series) == stats.rounds or (
            len(stats.round_series) == stats.rounds + 1
        )


class TestWireFormat:
    def test_id_bits(self):
        assert WireFormat(2).id_bits == 1
        assert WireFormat(1024).id_bits == 10
        assert WireFormat(1025).id_bits == 11

    def test_round_horizon(self):
        wf = WireFormat(16, round_horizon=100)
        assert wf.round_bits == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            WireFormat(0)

    def test_int_bits(self):
        assert int_bits(0) == 1
        assert int_bits(255) == 8
        with pytest.raises(ValueError):
            int_bits(-1)

    def test_message_bit_sizes(self):
        wf = WireFormat(100)
        assert TokenMessage().bit_size(wf) == TYPE_TAG_BITS
        # 7 travels as the varint of 8: 3-bit gamma length + 5 more bits
        assert IntMessage(7).bit_size(wf) == TYPE_TAG_BITS + 8
        assert PayloadMessage(None, 12).bit_size(wf) == TYPE_TAG_BITS + 12

    def test_message_reprs(self):
        assert "flood" in repr(TokenMessage("flood"))
        assert "7" in repr(IntMessage(7))
        assert "12" in repr(PayloadMessage(None, 12))


class TestBudgetFloorAndWireOverride:
    def test_budget_floor_for_tiny_networks(self):
        """O(log N) hides an additive constant: at N = 2 the budget
        floors at factor * 4 bits so a float-carrying message fits."""
        from repro.graphs import Graph

        tiny = Simulator(Graph(2, [(0, 1)]), FloodNode, congest_factor=32)
        assert tiny.bit_budget == 32 * 4
        big = Simulator(complete_graph(64), FloodNode, congest_factor=32)
        assert big.bit_budget == 32 * 6

    def test_wire_override(self):
        wf = WireFormat(1024, round_horizon=50)
        sim = Simulator(path_graph(4), FloodNode, wire=wf)
        assert sim.wire is wf
        assert sim.bit_budget == 32 * 10

    def test_default_max_rounds_scales_with_n(self):
        small = Simulator(path_graph(4), FloodNode)
        large = Simulator(path_graph(40), FloodNode)
        assert large.max_rounds > small.max_rounds
