"""Tests for the counting-phase byproducts: APSP, closeness, graph centrality."""

import pytest

from repro.centrality import closeness_centrality, graph_centrality
from repro.core import (
    distributed_apsp,
    distributed_betweenness,
    distributed_closeness,
    distributed_graph_centrality,
)
from repro.graphs import (
    all_pairs_distances,
    diameter,
    eccentricities,
    grid_graph,
    karate_club_graph,
    path_graph,
    star_graph,
)


class TestDistributedAPSP:
    def test_distances_exact(self):
        graph = karate_club_graph()
        result = distributed_apsp(graph)
        reference = all_pairs_distances(graph)
        for v in graph.nodes():
            for s in graph.nodes():
                assert result.distances[v][s] == reference[s][v]

    def test_diameter(self):
        graph = grid_graph(4, 5)
        assert distributed_apsp(graph).diameter == diameter(graph)

    def test_counting_only_is_faster_than_full(self):
        graph = karate_club_graph()
        counting = distributed_apsp(graph)
        full = distributed_betweenness(graph, arithmetic="exact")
        assert counting.rounds < full.rounds

    def test_eccentricities(self):
        graph = star_graph(7)
        result = distributed_apsp(graph)
        assert list(result.eccentricities().values()) == eccentricities(graph)


class TestDistributedCentralitiesFromAPSP:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(7), star_graph(6), grid_graph(3, 4), karate_club_graph()],
        ids=lambda g: g.name,
    )
    def test_closeness_matches_centralized(self, graph):
        distributed = distributed_closeness(graph)
        central = closeness_centrality(graph)
        for v in graph.nodes():
            assert distributed[v] == pytest.approx(central[v])

    @pytest.mark.parametrize(
        "graph",
        [path_graph(7), star_graph(6), grid_graph(3, 4)],
        ids=lambda g: g.name,
    )
    def test_graph_centrality_matches_centralized(self, graph):
        distributed = distributed_graph_centrality(graph)
        central = graph_centrality(graph)
        for v in graph.nodes():
            assert distributed[v] == pytest.approx(central[v])

    def test_apsp_rounds_linear(self):
        graph = path_graph(30)
        result = distributed_apsp(graph)
        assert result.rounds <= 14 * graph.num_nodes + 40
