"""Tests for the graph generators."""

import math

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    balanced_tree,
    barabasi_albert_graph,
    barbell_graph,
    complete_bipartite_graph,
    complete_graph,
    connected_erdos_renyi_graph,
    cycle_graph,
    diameter,
    diamond_chain_graph,
    ensure_connected,
    erdos_renyi_graph,
    figure1_graph,
    gnm_random_graph,
    grid_graph,
    hypercube_graph,
    is_connected,
    karate_club_graph,
    ladder_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    shortest_path_counts,
    star_graph,
    watts_strogatz_graph,
    wheel_graph,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert diameter(g) == 4

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.nodes())
        assert diameter(g) == 3

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert diameter(g) == 1

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert diameter(g) == 2

    def test_wheel(self):
        g = wheel_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 3 for v in range(1, 7))

    def test_wheel_too_small(self):
        with pytest.raises(GraphError):
            wheel_graph(3)

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_nodes == 7
        assert g.num_edges == 12
        assert not g.has_edge(0, 1)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert diameter(g) == 5

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert g.num_nodes == 8
        assert g.num_edges == 12
        assert all(g.degree(v) == 3 for v in g.nodes())
        assert diameter(g) == 3

    def test_hypercube_antipodal_path_count(self):
        g = hypercube_graph(4)
        sigma = shortest_path_counts(g, 0)
        assert sigma[0b1111] == math.factorial(4)

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.num_nodes == 15
        assert g.num_edges == 14
        assert is_connected(g)

    def test_balanced_tree_bad_branching(self):
        with pytest.raises(GraphError):
            balanced_tree(0, 2)

    def test_lollipop(self):
        g = lollipop_graph(4, 3)
        assert g.num_nodes == 7
        assert g.num_edges == 6 + 3
        assert is_connected(g)

    def test_barbell(self):
        g = barbell_graph(4, 2)
        assert g.num_nodes == 10
        assert is_connected(g)
        assert g.num_edges == 2 * 6 + 3

    def test_ladder(self):
        g = ladder_graph(4)
        assert g.num_nodes == 8
        assert g.num_edges == 3 + 3 + 4

    def test_diamond_chain_sigma_growth(self):
        k = 6
        g = diamond_chain_graph(k)
        assert g.num_nodes == 3 * k + 1
        sigma = shortest_path_counts(g, 0)
        assert sigma[g.num_nodes - 1] == 2**k
        assert diameter(g) == 2 * k

    def test_diamond_chain_needs_positive_k(self):
        with pytest.raises(GraphError):
            diamond_chain_graph(0)

    def test_figure1_structure(self):
        g = figure1_graph()
        assert g.num_nodes == 5
        assert g.num_edges == 5
        assert diameter(g) == 3
        # v1-v2, v2-v3, v2-v5, v3-v4, v5-v4
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and g.has_edge(1, 4)
        assert g.has_edge(2, 3) and g.has_edge(4, 3)

    def test_karate_club(self):
        g = karate_club_graph()
        assert g.num_nodes == 34
        assert g.num_edges == 78
        assert is_connected(g)
        assert g.degree(33) == 17
        assert g.degree(0) == 16


class TestRandomFamilies:
    def test_erdos_renyi_deterministic_per_seed(self):
        a = erdos_renyi_graph(20, 0.3, seed=5)
        b = erdos_renyi_graph(20, 0.3, seed=5)
        c = erdos_renyi_graph(20, 0.3, seed=6)
        assert a == b
        assert a != c

    def test_erdos_renyi_extreme_probabilities(self):
        assert erdos_renyi_graph(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi_graph(10, 1.1, seed=1).num_edges == 45

    def test_gnm_exact_edge_count(self):
        g = gnm_random_graph(10, 17, seed=2)
        assert g.num_edges == 17

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            gnm_random_graph(4, 7, seed=0)

    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = random_tree(12, seed=seed)
            assert g.num_edges == 11
            assert is_connected(g)

    def test_random_tree_tiny(self):
        assert random_tree(1).num_edges == 0
        assert random_tree(2).num_edges == 1

    def test_barabasi_albert(self):
        g = barabasi_albert_graph(30, 2, seed=3)
        assert g.num_nodes == 30
        assert is_connected(g)
        # star seed contributes m edges, every later node adds m more
        assert g.num_edges == 2 + (30 - 3) * 2

    def test_barabasi_albert_bad_m(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 5, seed=0)

    def test_watts_strogatz_zero_beta_is_lattice(self):
        g = watts_strogatz_graph(10, 4, 0.0, seed=0)
        assert g.num_edges == 20
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_watts_strogatz_rewired_keeps_edge_count(self):
        g = watts_strogatz_graph(12, 4, 0.5, seed=7)
        assert g.num_edges == 24

    def test_watts_strogatz_odd_k_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_random_geometric_radius_monotone(self):
        small = random_geometric_graph(25, 0.2, seed=4)
        large = random_geometric_graph(25, 0.6, seed=4)
        assert small.num_edges <= large.num_edges

    def test_ensure_connected(self):
        g = erdos_renyi_graph(30, 0.02, seed=9)
        patched = ensure_connected(g, seed=1)
        assert is_connected(patched)
        assert patched.num_edges >= g.num_edges

    def test_ensure_connected_noop_when_connected(self):
        g = path_graph(5)
        assert ensure_connected(g) is g

    def test_connected_erdos_renyi(self):
        for seed in range(4):
            assert is_connected(connected_erdos_renyi_graph(25, 0.05, seed))


class TestNewFamilies:
    def test_circulant_regular(self):
        from repro.graphs import circulant_graph

        g = circulant_graph(10, [1, 3])
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.num_edges == 20

    def test_circulant_uniform_betweenness(self):
        from repro.centrality import brandes_betweenness
        from repro.graphs import circulant_graph

        bc = brandes_betweenness(circulant_graph(9, [1, 2]), exact=True)
        assert len(set(bc.values())) == 1

    def test_circulant_errors(self):
        from repro.graphs import circulant_graph
        from repro.exceptions import GraphError
        import pytest as _pytest

        with _pytest.raises(GraphError):
            circulant_graph(2, [1])
        with _pytest.raises(GraphError):
            circulant_graph(6, [0])

    def test_caveman_structure(self):
        from repro.graphs import caveman_graph, is_connected

        g = caveman_graph(4, 5)
        assert g.num_nodes == 20
        assert is_connected(g)
        # cliques intact plus 4 ring links
        assert g.num_edges == 4 * 10 + 4

    def test_caveman_errors(self):
        from repro.graphs import caveman_graph
        from repro.exceptions import GraphError
        import pytest as _pytest

        with _pytest.raises(GraphError):
            caveman_graph(1, 4)

    def test_florentine_matches_networkx(self):
        import networkx as nx

        from repro.graphs import florentine_families_graph

        g, labels = florentine_families_graph()
        nxg = nx.florentine_families_graph()
        mine = {frozenset((labels[u], labels[v])) for u, v in g.edges()}
        assert mine == {frozenset(e) for e in nxg.edges()}

    def test_florentine_medici_power(self):
        """Padgett's observation: the Medici dominate betweenness."""
        from repro.centrality import brandes_betweenness
        from repro.graphs import florentine_families_graph

        g, labels = florentine_families_graph()
        bc = brandes_betweenness(g)
        medici = labels.index("Medici")
        assert bc[medici] == max(bc.values())
        # ... by a wide margin (Padgett: nearly double the runner-up)
        runner_up = max(v for node, v in bc.items() if node != medici)
        assert bc[medici] > 1.5 * runner_up

    def test_les_miserables_matches_networkx(self):
        import networkx as nx

        from repro.graphs import les_miserables_graph

        g, labels = les_miserables_graph()
        nxg = nx.les_miserables_graph()
        mine = {frozenset((labels[u], labels[v])) for u, v in g.edges()}
        assert mine == {frozenset(e) for e in nxg.edges()}
        assert g.num_nodes == 77 and g.num_edges == 254

    def test_les_miserables_weights_match_networkx(self):
        import networkx as nx

        from repro.graphs import les_miserables_weighted_graph

        g, labels = les_miserables_weighted_graph()
        nxg = nx.les_miserables_graph()
        for u, v, w in g.edges():
            assert nxg[labels[u]][labels[v]]["weight"] == w

    def test_les_miserables_valjean_dominates(self):
        """The classic result: Valjean has by far the highest betweenness."""
        from repro.centrality import brandes_betweenness
        from repro.graphs import les_miserables_graph

        g, labels = les_miserables_graph()
        bc = brandes_betweenness(g)
        valjean = labels.index("Valjean")
        assert bc[valjean] == max(bc.values())
        runner_up = max(v for node, v in bc.items() if node != valjean)
        assert bc[valjean] > 2 * runner_up
