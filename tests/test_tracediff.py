"""Trace-diff forensics: pinpointing the first divergence between runs.

The simulator's id-order round stepping makes delivery streams fully
deterministic, so two traces of the same run are byte-identical and any
disagreement has a well-defined *first* divergent delivery.  These
tests corrupt traces in controlled ways and check the diff machinery
names the exact delivery, round, edge — and, for payload-capturing
traces, the decoded message *field* — where execution forked.
"""

import dataclasses
import json

from repro.cli import main
from repro.congest.trace import Tracer
from repro.core import distributed_betweenness
from repro.graphs import figure1_graph, path_graph
from repro.obs import (
    chrome_trace,
    diff_report,
    first_divergence,
    round_frame_diff,
    write_chrome_trace,
)


def corrupt(tracer, index, **changes):
    """Swap one recorded delivery for a mutated copy (events are frozen)."""
    tracer._events[index] = dataclasses.replace(tracer._events[index], **changes)


def traced_run(graph, engine="sweep", capture_payloads=True, arithmetic="exact"):
    tracer = Tracer(capture_payloads=capture_payloads)
    distributed_betweenness(
        graph, engine=engine, arithmetic=arithmetic, tracer=tracer
    )
    return tracer


class TestFirstDivergence:
    def test_identical_runs_have_no_divergence(self):
        graph = figure1_graph()
        a = traced_run(graph)
        b = traced_run(graph)
        assert first_divergence(a, b) is None
        assert "traces are identical" in diff_report(a, b)

    def test_engine_equivalence_is_an_empty_diff(self):
        graph = path_graph(7)
        a = traced_run(graph, engine="sweep")
        b = traced_run(graph, engine="event")
        assert first_divergence(a, b) is None

    def test_corrupted_payload_pinpoints_field(self):
        """A flipped frame word names the decoded field that changed."""
        graph = figure1_graph()
        a = traced_run(graph)
        b = traced_run(graph)
        victim_index = next(
            i for i, e in enumerate(b.deliveries())
            if e.message_type == "BfsWave" and e.word is not None
        )
        victim = b.deliveries()[victim_index]
        corrupt(b, victim_index, word=victim.word ^ 0b1)
        divergence = first_divergence(a, b, arithmetic="exact")
        assert divergence is not None
        assert divergence.index == victim_index
        assert divergence.kind == "payload"
        assert divergence.round_number == victim.round_number
        assert divergence.sender == victim.sender
        assert divergence.receiver == victim.receiver
        assert divergence.message_type == "BfsWave"
        # The flipped low bit lands in a concrete wire field, and the
        # two decoded values are reported.
        assert divergence.field is not None
        assert divergence.value_a != divergence.value_b
        assert divergence.field in divergence.describe()

    def test_metadata_divergence_reports_field_name(self):
        graph = figure1_graph()
        a = traced_run(graph, capture_payloads=False)
        b = traced_run(graph, capture_payloads=False)
        victim = b.deliveries()[10]
        corrupt(b, 10, bits=victim.bits + 7)
        divergence = first_divergence(a, b)
        assert divergence.index == 10
        assert divergence.kind == "bits"
        assert divergence.value_b == divergence.value_a + 7

    def test_truncated_trace_is_a_length_divergence(self):
        graph = figure1_graph()
        a = traced_run(graph, capture_payloads=False)
        b = traced_run(graph, capture_payloads=False)
        del b._events[50:]
        divergence = first_divergence(a, b)
        assert divergence.kind == "length"
        assert divergence.index == 50
        assert "ends here" in divergence.describe()

    def test_without_arithmetic_payload_degrades_to_raw_words(self):
        """SIGMA/PSI frames need an arithmetic context to decode; without
        one the divergence still lands on the right delivery, reported
        as raw frame words."""
        graph = figure1_graph()
        a = traced_run(graph)
        b = traced_run(graph)
        victim_index = next(
            i for i, e in enumerate(b.deliveries())
            if e.message_type == "AggValue" and e.word is not None
        )
        victim = b.deliveries()[victim_index]
        corrupt(b, victim_index, word=victim.word ^ 0b1)
        divergence = first_divergence(a, b)  # no arithmetic given
        assert divergence.index == victim_index
        assert divergence.kind == "payload"
        assert divergence.field is None
        assert divergence.value_a == victim.word ^ 0b1 or (
            divergence.value_a != divergence.value_b
        )


class TestRoundFrameDiff:
    def test_divergent_round_renders_per_edge(self):
        graph = figure1_graph()
        a = traced_run(graph)
        b = traced_run(graph)
        victim = b.deliveries()[8]
        corrupt(b, 8, word=(victim.word or 0) ^ 0b1)
        rows = round_frame_diff(
            a, b, victim.round_number, arithmetic="exact"
        )
        assert rows
        edges = [row["edge"] for row in rows]
        assert edges == sorted(edges)
        flagged = [row for row in rows if not row["same"]]
        assert (victim.sender, victim.receiver) in [
            row["edge"] for row in flagged
        ]
        for row in rows:
            assert row["a"]["messages"] >= 1
            assert row["a"]["bits"] >= 1

    def test_report_marks_divergent_edges(self):
        graph = figure1_graph()
        a = traced_run(graph)
        b = traced_run(graph)
        victim = b.deliveries()[8]
        corrupt(b, 8, word=(victim.word or 0) ^ 0b1)
        report = diff_report(a, b, arithmetic="exact", context=2)
        assert "FIRST DIVERGENCE:" in report
        assert "* edge" in report
        assert "last 2 agreeing deliveries:" in report


class TestTraceSerialization:
    def test_payload_roundtrip_preserves_words_and_wire(self, tmp_path):
        tracer = traced_run(figure1_graph())
        text = tracer.to_json()
        loaded = Tracer.from_json(text)
        assert loaded.wire is not None
        assert [e.word for e in loaded.deliveries()] == [
            e.word for e in tracer.deliveries()
        ]
        assert first_divergence(tracer, loaded) is None

    def test_plain_trace_roundtrip_has_no_words(self):
        tracer = traced_run(figure1_graph(), capture_payloads=False)
        payload = json.loads(tracer.to_json())
        assert "wire" not in payload
        assert all(len(row) == 5 for row in payload["events"])
        loaded = Tracer.from_json(tracer.to_json())
        assert all(e.word is None for e in loaded.deliveries())

    def test_from_json_accepts_legacy_five_column_rows(self):
        tracer = traced_run(figure1_graph(), capture_payloads=False)
        loaded = Tracer.from_json(tracer.to_json())
        assert len(loaded.deliveries()) == len(tracer.deliveries())
        assert first_divergence(tracer, loaded) is None


class TestCliTraceDiff:
    def run(self, *argv):
        return main(list(argv))

    def test_engine_pair_mode_exits_zero_on_equivalence(self, capsys):
        assert self.run(
            "trace", "diff", "--graph", "path:6", "--engines", "sweep,event"
        ) == 0
        assert "identical" in capsys.readouterr().out

    def test_file_mode_pinpoints_corruption(self, tmp_path, capsys):
        graph = figure1_graph()
        a = traced_run(graph, arithmetic="lfloat")
        b = traced_run(graph, arithmetic="lfloat")
        victim_index = next(
            i for i, e in enumerate(b.deliveries())
            if e.message_type == "BfsWave" and e.word is not None
        )
        victim = b.deliveries()[victim_index]
        corrupt(b, victim_index, word=victim.word ^ 0b1)
        path_a = tmp_path / "a.trace.json"
        path_b = tmp_path / "b.trace.json"
        path_a.write_text(a.to_json())
        path_b.write_text(b.to_json())
        assert self.run(
            "trace", "diff", str(path_a), str(path_b),
            "--arithmetic", "lfloat",
        ) == 1
        out = capsys.readouterr().out
        assert "FIRST DIVERGENCE:" in out
        assert "round {}".format(victim.round_number) in out

    def test_trace_out_writes_loadable_trace(self, tmp_path, capsys):
        out_path = tmp_path / "run.trace.json"
        assert self.run(
            "trace", "--graph", "path:5", "--payloads",
            "--trace-out", str(out_path),
        ) == 0
        loaded = Tracer.from_json(out_path.read_text())
        assert loaded.deliveries()
        assert loaded.wire is not None


class TestChromeTrace:
    def _rows(self):
        from repro.obs import Telemetry

        telemetry = Telemetry.with_streaming(progress=True, console=False)
        subscriber = telemetry.bus.subscribe(capacity=100_000)
        distributed_betweenness(
            path_graph(10), engine="event", telemetry=telemetry
        )
        telemetry.bus.close()
        return subscriber.drain()

    def test_phase_spans_and_metadata(self):
        payload = chrome_trace(self._rows())
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        spans = [e for e in events if e["ph"] == "X"]
        assert spans
        for span in spans:
            assert span["ts"] >= 0
            assert span["dur"] >= 0
        names = {e["name"] for e in spans}
        assert "tree_build" in names
        counters = [e for e in events if e["ph"] == "C"]
        assert counters  # progress heartbeats become counter tracks

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(self._rows(), str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert count > 0
