"""Tests for the L-bit floating point format (Section VI, Lemma 1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic import LFloat, Rounding, lfloat_sum
from repro.exceptions import ArithmeticModeError, LFloatRangeError

# Exponents are bounded by 2**L - 1, so with L >= 8 any value below
# 2**255 fits; the strategies stay comfortably inside that envelope and
# format overflow is exercised by its own dedicated test.
PRECISIONS = st.integers(min_value=8, max_value=24)
POSITIVE_INTS = st.integers(min_value=1, max_value=10**24)


class TestConstruction:
    def test_zero(self):
        z = LFloat.zero(8)
        assert z.is_zero
        assert z.to_fraction() == 0
        assert z.to_float() == 0.0

    def test_small_ints_exact(self):
        for value in range(1, 17):
            f = LFloat.from_int(value, 8)
            assert f.to_fraction() == value

    def test_negative_rejected(self):
        with pytest.raises(ArithmeticModeError):
            LFloat.from_int(-1, 8)
        with pytest.raises(ArithmeticModeError):
            LFloat.from_fraction(Fraction(-1, 2), 8)

    def test_precision_too_small(self):
        with pytest.raises(ArithmeticModeError):
            LFloat.from_int(1, 1)

    def test_unnormalized_mantissa_rejected(self):
        with pytest.raises(ArithmeticModeError):
            LFloat(1, 0, 8)  # mantissa below 2**(L-1)

    def test_exponent_out_of_range(self):
        with pytest.raises(LFloatRangeError):
            LFloat(1 << 7, 1 << 9, 8)

    def test_value_overflows_small_format(self):
        # L = 4 bounds the exponent by 15, so 2**20 cannot be encoded;
        # this is the failure mode of choosing L too small for the graph.
        with pytest.raises(LFloatRangeError):
            LFloat.from_int(1 << 20, 4)

    def test_small_precision_small_values_ok(self):
        f = LFloat.from_int(100, 4, Rounding.CEIL)
        assert f.to_fraction() >= 100
        assert f.to_fraction() <= Fraction(100) * (1 + Fraction(2) ** -3)

    @given(POSITIVE_INTS, PRECISIONS)
    @settings(max_examples=150, deadline=None)
    def test_mantissa_normalized(self, value, precision):
        f = LFloat.from_int(value, precision)
        assert (1 << (precision - 1)) <= f.mantissa < (1 << precision)


class TestLemma1CeilEstimate:
    """Lemma 1: the ceil estimate a of b satisfies 0 <= a/b - 1 <= 2**(1-L)."""

    @given(POSITIVE_INTS, PRECISIONS)
    @settings(max_examples=200, deadline=None)
    def test_ceil_overestimates_within_bound(self, value, precision):
        estimate = LFloat.from_int(value, precision, Rounding.CEIL)
        ratio = estimate.to_fraction() / value
        assert ratio >= 1
        assert ratio - 1 <= Fraction(2) ** (1 - precision)

    @given(POSITIVE_INTS, PRECISIONS)
    @settings(max_examples=200, deadline=None)
    def test_floor_underestimates_within_bound(self, value, precision):
        estimate = LFloat.from_int(value, precision, Rounding.FLOOR)
        ratio = estimate.to_fraction() / value
        assert ratio <= 1
        assert 1 - ratio <= Fraction(2) ** (1 - precision)

    @given(POSITIVE_INTS, PRECISIONS)
    @settings(max_examples=200, deadline=None)
    def test_nearest_within_half_bound(self, value, precision):
        estimate = LFloat.from_int(value, precision, Rounding.NEAREST)
        error = abs(estimate.to_fraction() / value - 1)
        assert error <= Fraction(2) ** (-precision)

    @given(
        st.fractions(
            min_value=Fraction(1, 10**12), max_value=Fraction(10**12)
        ),
        PRECISIONS,
    )
    @settings(max_examples=150, deadline=None)
    def test_fraction_ceil_bound(self, value, precision):
        estimate = LFloat.from_fraction(value, precision, Rounding.CEIL)
        ratio = estimate.to_fraction() / value
        assert 1 <= ratio <= 1 + Fraction(2) ** (1 - precision)


class TestArithmetic:
    def test_exact_addition_of_small_values(self):
        a = LFloat.from_int(3, 10)
        b = LFloat.from_int(5, 10)
        assert (a + b).to_fraction() == 8

    def test_add_zero_identity(self):
        a = LFloat.from_int(7, 8)
        z = LFloat.zero(8)
        assert (a + z).to_fraction() == 7
        assert (z + a).to_fraction() == 7

    def test_mul(self):
        a = LFloat.from_int(6, 12)
        b = LFloat.from_int(7, 12)
        assert a.mul(b).to_fraction() == 42

    def test_mul_zero(self):
        a = LFloat.from_int(6, 12)
        assert a.mul(LFloat.zero(12)).is_zero

    def test_div(self):
        a = LFloat.from_int(1, 12)
        b = LFloat.from_int(4, 12)
        assert a.div(b).to_fraction() == Fraction(1, 4)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            LFloat.from_int(1, 8).div(LFloat.zero(8))

    def test_reciprocal_power_of_two_exact(self):
        f = LFloat.from_int(8, 10)
        assert f.reciprocal().to_fraction() == Fraction(1, 8)

    def test_reciprocal_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            LFloat.zero(8).reciprocal()

    @given(POSITIVE_INTS, PRECISIONS)
    @settings(max_examples=150, deadline=None)
    def test_reciprocal_floor_bound(self, value, precision):
        f = LFloat.from_int(value, precision, Rounding.CEIL)
        r = f.reciprocal(Rounding.FLOOR)
        exact = 1 / f.to_fraction()
        assert r.to_fraction() <= exact
        assert r.to_fraction() >= exact / (1 + Fraction(2) ** (1 - precision))

    @given(POSITIVE_INTS, POSITIVE_INTS, PRECISIONS)
    @settings(max_examples=150, deadline=None)
    def test_add_single_rounding(self, a, b, precision):
        """One addition incurs at most one rounding of the exact sum."""
        fa = LFloat.from_int(a, precision, Rounding.CEIL)
        fb = LFloat.from_int(b, precision, Rounding.CEIL)
        exact = fa.to_fraction() + fb.to_fraction()
        total = fa.add(fb, Rounding.CEIL)
        assert total.to_fraction() >= exact
        assert total.to_fraction() <= exact * (1 + Fraction(2) ** (1 - precision))

    def test_mixed_precision_rejected(self):
        with pytest.raises(ArithmeticModeError):
            LFloat.from_int(1, 8).add(LFloat.from_int(1, 10))

    def test_int_and_fraction_coercion(self):
        a = LFloat.from_int(2, 10)
        assert (a + 3).to_fraction() == 5
        assert (a * Fraction(1, 2)).to_fraction() == 1
        assert (3 + a).to_fraction() == 5

    def test_unsupported_operand(self):
        with pytest.raises(ArithmeticModeError):
            LFloat.from_int(1, 8).add("x")  # type: ignore[arg-type]


class TestComparisons:
    def test_ordering(self):
        a = LFloat.from_int(3, 10)
        b = LFloat.from_int(4, 10)
        assert a < b and a <= b and b > a and b >= a
        assert a == LFloat.from_int(3, 10)
        assert a == 3
        assert hash(a) == hash(LFloat.from_int(3, 10))

    def test_eq_other_type(self):
        assert LFloat.from_int(1, 8) != "one"


class TestEncoding:
    @given(POSITIVE_INTS, PRECISIONS, st.sampled_from(list(Rounding)))
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_roundtrip(self, value, precision, mode):
        f = LFloat.from_int(value, precision, mode)
        word = f.encode()
        assert 0 <= word < (1 << f.bit_size())
        g = LFloat.decode(word, precision)
        assert g.to_fraction() == f.to_fraction()

    def test_negative_exponent_roundtrip(self):
        f = LFloat.from_fraction(Fraction(1, 1000), 12)
        assert LFloat.decode(f.encode(), 12).to_fraction() == f.to_fraction()

    def test_bit_size(self):
        assert LFloat.from_int(5, 16).bit_size() == 33  # 2L + 1

    def test_huge_exponent_within_format(self):
        # sigma can be ~(N/D)**D; with L = 16 exponents up to 2**16 - 1
        # are representable, covering sigma ~ 2**65000.
        f = LFloat.from_int(2**60000, 16, Rounding.CEIL)
        assert f.exponent == 60001
        ratio = f.to_fraction() / (2**60000)
        assert 1 <= ratio <= 1 + Fraction(2) ** -15


class TestSum:
    def test_lfloat_sum_left_to_right(self):
        values = [LFloat.from_int(i, 10) for i in range(1, 6)]
        total = lfloat_sum(values, 10)
        assert total.to_fraction() == 15

    def test_lfloat_sum_empty(self):
        assert lfloat_sum([], 10).is_zero

    @given(
        st.lists(st.integers(1, 10**6), min_size=1, max_size=20),
        PRECISIONS,
    )
    @settings(max_examples=100, deadline=None)
    def test_floor_sum_compound_bound(self, values, precision):
        """k floor-rounded adds keep a one-sided (1+eta)^k envelope."""
        floats = [LFloat.from_int(v, precision, Rounding.FLOOR) for v in values]
        total = lfloat_sum(floats, precision, Rounding.FLOOR)
        exact = sum(values)
        eta = Fraction(2) ** (1 - precision)
        k = 2 * len(values)  # one rounding per input + per addition
        assert total.to_fraction() <= exact
        assert total.to_fraction() >= exact / (1 + eta) ** k
