"""Unit tests for the telemetry subsystem (:mod:`repro.obs`).

The monitor-under-fire tests live in ``test_obs_monitors.py``; this
file covers the building blocks — metrics registry, phase spans,
profiler, the :class:`Telemetry` facade and its JSONL export — plus the
runner/CLI integration points.
"""

import json

import pytest

from repro.analysis.runner import ExperimentRunner, run_many
from repro.cli import main
from repro.core import distributed_betweenness
from repro.graphs import figure1_graph, path_graph
from repro.obs import (
    METRICS_SCHEMA,
    Counter,
    Histogram,
    MetricsRegistry,
    PhaseTracker,
    Profiler,
    Telemetry,
)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = Counter("sends")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("rounds")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_buckets_and_mean(self):
        histogram = Histogram("bits")
        for value in (1, 2, 900):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["min"] == 1 and snapshot["max"] == 900
        assert histogram.mean == pytest.approx(903 / 3)
        assert sum(snapshot["buckets"]) == 3

    def test_registry_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        assert "x" in registry and len(registry) == 1

    def test_registry_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b"]
        json.dumps(snapshot)  # must be JSON-serializable as-is


# ----------------------------------------------------------------------
# phase spans
# ----------------------------------------------------------------------
class TestPhaseTracker:
    def test_consecutive_spans_share_boundaries(self):
        tracker = PhaseTracker()
        tracker.begin("a", 0)
        tracker.begin("b", 5)
        tracker.end(9)
        (a, b) = tracker.spans()
        assert (a.start_round, a.end_round, a.rounds) == (0, 5, 5)
        assert (b.start_round, b.end_round, b.rounds) == (5, 9, 4)
        assert tracker.rounds_by_phase() == {"a": 5, "b": 4}

    def test_zero_round_span_is_legal(self):
        tracker = PhaseTracker()
        tracker.begin("broadcast", 7)
        tracker.begin("next", 7)
        assert tracker.get("broadcast").rounds == 0

    def test_regressing_boundary_is_rejected(self):
        tracker = PhaseTracker()
        tracker.begin("a", 10)
        with pytest.raises(ValueError):
            tracker.begin("b", 4)

    def test_end_without_open_span_is_a_noop(self):
        tracker = PhaseTracker()
        assert tracker.end(3) is None
        tracker.begin("a", 0)
        tracker.end(2)
        assert tracker.end(5) is None  # already closed
        assert tracker.active is None

    def test_wall_clock_uses_injected_clock(self):
        ticks = iter([1.0, 2.5, 4.0])
        tracker = PhaseTracker(clock=lambda: next(ticks))
        tracker.begin("a", 0)
        tracker.begin("b", 3)
        tracker.end(6)
        assert tracker.get("a").wall_seconds == pytest.approx(1.5)
        assert tracker.get("b").wall_seconds == pytest.approx(1.5)


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_add_and_bump_accumulate(self):
        profiler = Profiler()
        profiler.add("step", 0.25)
        profiler.add("step", 0.75)
        profiler.bump("skips", 3)
        assert profiler.seconds("step") == pytest.approx(1.0)
        assert profiler.calls("step") == 2
        assert profiler.count("skips") == 3
        assert profiler.summary()["step"]["calls"] == 2

    def test_section_context_manager_times(self):
        profiler = Profiler()
        with profiler.section("outer"):
            pass
        assert profiler.calls("outer") == 1
        assert profiler.seconds("outer") >= 0.0

    def test_table_rows_sorted_by_time(self):
        profiler = Profiler()
        profiler.add("fast", 0.1)
        profiler.add("slow", 0.9)
        profiler.bump("events")
        rows = profiler.table_rows()
        assert [row[0] for row in rows] == ["slow", "fast", "events"]


# ----------------------------------------------------------------------
# the facade and its export
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_run_populates_phases_gauges_and_export(self, tmp_path):
        telemetry = Telemetry.with_monitors()
        result = distributed_betweenness(
            figure1_graph(), arithmetic="lfloat", telemetry=telemetry
        )
        assert telemetry.phases.rounds_by_phase().keys() == {
            "tree_build",
            "counting",
            "diameter_broadcast",
            "aggregation",
        }
        registry = telemetry.registry
        assert registry.gauge("run.rounds").value == result.rounds
        assert registry.gauge("run.diameter").value == result.diameter
        path = tmp_path / "metrics.jsonl"
        telemetry.write_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["event"] == "meta"
        assert rows[0]["schema"] == METRICS_SCHEMA
        events = {row["event"] for row in rows}
        assert events == {"meta", "phase", "metric", "monitor"}
        assert sum(1 for row in rows if row["event"] == "phase") == 4
        assert sum(1 for row in rows if row["event"] == "monitor") == 3

    def test_phase_rounds_partition_the_run(self):
        telemetry = Telemetry()
        result = distributed_betweenness(
            path_graph(12), arithmetic="exact", telemetry=telemetry
        )
        spans = telemetry.phases.spans()
        assert spans[0].start_round == 0
        for before, after in zip(spans, spans[1:]):
            assert before.end_round == after.start_round
        # The last span closes at the aggregation finish round, at most
        # one quiet termination round before the simulator's total.
        assert result.rounds - 1 <= spans[-1].end_round <= result.rounds

    def test_profile_rows_present_when_enabled(self):
        telemetry = Telemetry(profile=True)
        distributed_betweenness(
            figure1_graph(), arithmetic="exact", telemetry=telemetry
        )
        profile = telemetry.profiler.summary()
        assert profile["engine.step"]["calls"] > 0
        assert any(row["event"] == "profile" for row in telemetry.events())

    def test_send_hooks_skipped_without_send_monitors(self):
        telemetry = Telemetry()
        assert not telemetry.wants_sends
        telemetry_with = Telemetry.with_monitors()
        assert telemetry_with.wants_sends


# ----------------------------------------------------------------------
# runner integration
# ----------------------------------------------------------------------
class TestRunnerPhases:
    def test_collect_phases_adds_columns(self):
        runner = ExperimentRunner(arithmetic="exact", collect_phases=True)
        (record,) = runner.run_family("paths", [path_graph(8)])
        assert record.extra["phase_tree_build_rounds"] > 0
        assert record.extra["phase_aggregation_rounds"] > 0
        assert sum(record.extra.values()) <= record.rounds
        assert "phase_tree_build_rounds" in runner.to_csv()

    def test_collect_phases_rejects_custom_run(self):
        with pytest.raises(ValueError):
            ExperimentRunner(run=lambda graph: None, collect_phases=True)

    def test_run_many_collects_phases_across_pool(self):
        records = run_many(
            [path_graph(6), path_graph(7)],
            arithmetic="exact",
            processes=2,
            collect_phases=True,
        )
        for record in records:
            assert record.extra["phase_counting_rounds"] > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestReportCommand:
    def test_report_clean_run_exits_zero_and_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "m.jsonl"
        code = main(
            [
                "report",
                "--graph",
                "figure1",
                "--profile",
                "--timeline",
                "--metrics-out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Protocol phases" in printed
        assert "Invariant monitors" in printed
        assert "Profile" in printed
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows[0]["schema"] == METRICS_SCHEMA

    def test_report_raise_mode_flag_accepted(self, capsys):
        assert main(["report", "--graph", "path:6", "--monitor-mode", "raise"]) == 0
        assert "OK" in capsys.readouterr().out
