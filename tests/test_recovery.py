"""Supervised shard runtime: checkpoints, resume, watchdog, respawn.

Recovery must never trade correctness for liveness: a resumed run, a
run that survived a hung worker via respawn, and an uninterrupted run
all produce byte-identical betweenness, rounds, bits, messages and
per-round series.  A snapshot that cannot be proven intact (torn
manifest, checksum mismatch, wrong schema) raises
:class:`CheckpointError` — the runtime falls back to an older snapshot
or degrades to a *partial* answer, but never resumes from garbage.
"""

import multiprocessing
import signal
import time
import types

import pytest

from repro.core import distributed_betweenness
from repro.exceptions import CheckpointError, CheckpointPause, EngineCapabilityError
from repro.faults import CrashWindow, FaultPlan, SlowWorker, WorkerHang
from repro.graphs import (
    cycle_graph,
    figure1_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
)
from repro.obs.history import entry_from_result
from repro.shard import (
    CHECKPOINT_SCHEMA,
    SupervisionConfig,
    list_checkpoints,
    load_checkpoint,
    read_manifest,
    resolve_checkpoint,
    supervision_for,
    write_checkpoint,
)
from repro.shard.checkpoint import (
    corrupt_checkpoint,
    prune_checkpoints,
)
from repro.shard.supervisor import WorkerFailure


def _fingerprint(result):
    """Every observable of a protocol run, in comparable form."""
    return {
        "betweenness": sorted(result.betweenness.items()),
        "diameter": result.diameter,
        "rounds": result.rounds,
        "start_times": sorted(result.start_times.items()),
        "summary": result.stats.summary(),
        "round_series": result.stats.round_series,
        "worst_edge": result.stats.worst_edge,
    }


def _fingerprint_sans_faults(result):
    """Fingerprint of an infra-fault run, comparable to a fault-free one.

    Worker hangs/stragglers are machine faults, not protocol faults:
    the summary grows a ``faults`` block merely because a plan was
    attached, but every counter in it must be zero — asserted here —
    and the rest of the fingerprint must match the clean run exactly.
    """
    fp = _fingerprint(result)
    summary = dict(fp["summary"])
    faults = summary.pop("faults", None)
    if faults is not None:
        assert all(not v for v in faults.values()), faults
    return dict(fp, summary=summary)


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def _write(self, run_dir, round_number=4, payload=b"shard-state"):
        return write_checkpoint(
            run_dir,
            round_number,
            {1: payload, 2: payload * 2},
            b"coordinator-state",
            {"n": 10, "workers": 3},
        )

    def test_round_trip(self, tmp_path):
        ckpt = self._write(tmp_path)
        manifest, files = load_checkpoint(ckpt)
        assert manifest["schema"] == CHECKPOINT_SCHEMA
        assert manifest["round"] == 4
        assert manifest["meta"] == {"n": 10, "workers": 3}
        assert files["shard-1.bin"] == b"shard-state"
        assert files["shard-2.bin"] == b"shard-state" * 2
        assert files["coordinator.bin"] == b"coordinator-state"

    def test_resolve_prefers_highest_valid_round(self, tmp_path):
        self._write(tmp_path, round_number=4)
        newest = self._write(tmp_path, round_number=12)
        assert resolve_checkpoint(tmp_path) == newest
        # Pointing straight at a snapshot dir resolves to itself.
        assert resolve_checkpoint(newest) == newest

    def test_list_is_oldest_first(self, tmp_path):
        for rnd in (12, 4, 8):
            self._write(tmp_path, round_number=rnd)
        rounds = [read_manifest(p)["round"] for p in list_checkpoints(tmp_path)]
        assert rounds == [4, 8, 12]

    def test_prune_keeps_newest(self, tmp_path):
        for rnd in (2, 4, 6, 8):
            self._write(tmp_path, round_number=rnd)
        removed = prune_checkpoints(tmp_path, keep=2)
        assert removed == 2
        rounds = [read_manifest(p)["round"] for p in list_checkpoints(tmp_path)]
        assert rounds == [6, 8]

    def test_torn_manifest_raises(self, tmp_path):
        ckpt = self._write(tmp_path)
        manifest_path = ckpt / "manifest.json"
        text = manifest_path.read_text()
        manifest_path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="torn manifest"):
            read_manifest(ckpt)

    def test_missing_manifest_raises(self, tmp_path):
        ckpt = self._write(tmp_path)
        (ckpt / "manifest.json").unlink()
        with pytest.raises(CheckpointError, match="no readable manifest"):
            read_manifest(ckpt)

    def test_schema_mismatch_raises(self, tmp_path):
        import json

        ckpt = self._write(tmp_path)
        manifest_path = ckpt / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = "repro-ckpt-v999"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="schema"):
            read_manifest(ckpt)

    def test_flipped_byte_fails_checksum(self, tmp_path):
        ckpt = self._write(tmp_path)
        victim = corrupt_checkpoint(ckpt, seed=3, round_number=4)
        assert victim != "manifest.json"
        with pytest.raises(CheckpointError, match="blake2b"):
            load_checkpoint(ckpt)

    def test_short_file_fails_length_check(self, tmp_path):
        ckpt = self._write(tmp_path)
        path = ckpt / "coordinator.bin"
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(CheckpointError, match="bytes"):
            load_checkpoint(ckpt)

    def test_resolve_skips_corrupt_newest(self, tmp_path):
        older = self._write(tmp_path, round_number=4)
        newest = self._write(tmp_path, round_number=8)
        (newest / "manifest.json").write_text("{ not json")
        assert resolve_checkpoint(tmp_path) == older

    def test_resolve_empty_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            resolve_checkpoint(tmp_path)


# ----------------------------------------------------------------------
# supervision config surface
# ----------------------------------------------------------------------
class TestSupervisionConfig:
    def test_checkpoints_need_a_directory(self):
        with pytest.raises(ValueError):
            SupervisionConfig(checkpoint_every=5)

    def test_keep_floor_is_two(self):
        with pytest.raises(ValueError):
            SupervisionConfig(keep_checkpoints=1)

    def test_backoff_doubles_then_caps(self):
        sup = SupervisionConfig(backoff_base=0.1, backoff_cap=0.5)
        delays = [sup.backoff(i) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_infra_fault_plan_implies_supervision(self):
        plan = FaultPlan(seed=1, worker_hangs=(WorkerHang(shard=1, round=3),))
        assert supervision_for(plan, None) is not None
        assert supervision_for(FaultPlan(seed=1), None) is None
        explicit = SupervisionConfig(max_restarts=7)
        assert supervision_for(plan, explicit) is explicit

    def test_supervision_requires_shard_engine(self):
        with pytest.raises(EngineCapabilityError, match="shard"):
            distributed_betweenness(
                figure1_graph(),
                engine="event",
                supervision=SupervisionConfig(max_restarts=1),
            )

    def test_infra_fault_validation(self):
        with pytest.raises(ValueError):
            WorkerHang(shard=0, round=3)  # shard 0 lives in-coordinator
        with pytest.raises(ValueError):
            SlowWorker(shard=1, round=3, delay=0.0)


# ----------------------------------------------------------------------
# pause / resume bit-identity
# ----------------------------------------------------------------------
RESUME_ZOO = [
    cycle_graph(12),
    path_graph(10),
    grid_graph(3, 4),
    lollipop_graph(5, 4),
]


class TestPauseResume:
    @pytest.mark.parametrize("graph", RESUME_ZOO, ids=lambda g: g.name)
    @pytest.mark.parametrize("protocol", ["hua-bc", "cfp-bc"])
    def test_resume_is_bit_identical(self, graph, protocol, tmp_path):
        reference = _fingerprint(
            distributed_betweenness(
                graph, engine="shard", workers=3, protocol=protocol
            )
        )
        # A fully-supervised run writes checkpoints but changes nothing.
        supervised = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            protocol=protocol,
            checkpoint_every=3,
            checkpoint_dir=str(tmp_path),
        )
        assert _fingerprint(supervised) == reference
        assert supervised.stats.supervisor["checkpoints_written"] > 0
        # Resume from the newest surviving snapshot: same answer, bit
        # for bit, and the stats ledger knows where it came from.
        ckpt = resolve_checkpoint(tmp_path)
        resumed = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            protocol=protocol,
            resume_from=str(ckpt),
        )
        assert _fingerprint(resumed) == reference
        assert resumed.stats.supervisor["resumed_from"] == read_manifest(
            ckpt
        )["round"]

    def test_pause_raises_after_durable_write(self, tmp_path):
        graph = cycle_graph(16)
        sup = SupervisionConfig(
            checkpoint_every=5,
            checkpoint_dir=str(tmp_path),
            stop_after=10,
        )
        with pytest.raises(CheckpointPause) as excinfo:
            distributed_betweenness(
                graph, engine="shard", workers=3, supervision=sup
            )
        pause = excinfo.value
        assert pause.round_number == 10
        # The snapshot named by the pause is already durable and valid.
        manifest, _files = load_checkpoint(pause.checkpoint_path)
        assert manifest["round"] == 10
        reference = _fingerprint(
            distributed_betweenness(graph, engine="shard", workers=3)
        )
        resumed = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            resume_from=str(pause.checkpoint_path),
        )
        assert _fingerprint(resumed) == reference

    @pytest.mark.parametrize("protocol", ["hua-bc", "cfp-bc"])
    def test_resume_under_message_and_crash_faults(self, protocol, tmp_path):
        graph = cycle_graph(14)
        plan = FaultPlan(
            seed=11,
            drop_rate=0.03,
            duplicate_rate=0.03,
            crashes=(CrashWindow(5, 8, 20),),
        )
        reference = _fingerprint(
            distributed_betweenness(
                graph,
                engine="shard",
                workers=3,
                protocol=protocol,
                faults=plan,
                resilient=True,
            )
        )
        supervised = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            protocol=protocol,
            faults=plan,
            resilient=True,
            checkpoint_every=4,
            checkpoint_dir=str(tmp_path),
        )
        assert _fingerprint(supervised) == reference
        resumed = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            protocol=protocol,
            faults=plan,
            resilient=True,
            resume_from=str(resolve_checkpoint(tmp_path)),
        )
        assert _fingerprint(resumed) == reference

    def test_resume_refuses_a_different_run(self, tmp_path):
        graph = cycle_graph(12)
        sup = SupervisionConfig(
            checkpoint_every=3, checkpoint_dir=str(tmp_path)
        )
        distributed_betweenness(
            graph, engine="shard", workers=3, supervision=sup
        )
        ckpt = resolve_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="different run"):
            distributed_betweenness(
                path_graph(12),  # different graph entirely
                engine="shard",
                workers=3,
                resume_from=str(ckpt),
            )
        with pytest.raises(CheckpointError, match="different run"):
            distributed_betweenness(
                graph,
                engine="shard",
                workers=4,  # different worker count
                resume_from=str(ckpt),
            )


# ----------------------------------------------------------------------
# watchdog: hang detection, respawn, stragglers, budget exhaustion
# ----------------------------------------------------------------------
class TestWatchdog:
    @pytest.mark.parametrize("protocol", ["hua-bc", "cfp-bc"])
    def test_hung_worker_respawned_identical(self, protocol, tmp_path):
        graph = cycle_graph(12)
        reference = _fingerprint(
            distributed_betweenness(
                graph, engine="shard", workers=3, protocol=protocol
            )
        )
        plan = FaultPlan(seed=7, worker_hangs=(WorkerHang(shard=1, round=9),))
        recovered = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            protocol=protocol,
            faults=plan,
            supervision=SupervisionConfig(
                heartbeat_timeout=0.5,
                max_restarts=2,
                checkpoint_every=4,
                checkpoint_dir=str(tmp_path),
            ),
        )
        assert _fingerprint_sans_faults(recovered) == reference
        sup = recovered.stats.supervisor
        assert sup["restarts"] == 1
        assert sup["hang_detections"] == 1
        assert sup["rollbacks"] == 1
        assert sup["shards_abandoned"] == []
        assert recovered.completeness is None or recovered.completeness.complete

    def test_hang_without_checkpoints_replays_from_round_zero(self):
        graph = cycle_graph(10)
        reference = _fingerprint(
            distributed_betweenness(graph, engine="shard", workers=3)
        )
        plan = FaultPlan(seed=3, worker_hangs=(WorkerHang(shard=2, round=6),))
        recovered = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            faults=plan,
            supervision=SupervisionConfig(
                heartbeat_timeout=0.5, max_restarts=1
            ),
        )
        assert _fingerprint_sans_faults(recovered) == reference
        assert recovered.stats.supervisor["restarts"] == 1

    def test_repeat_hang_consumes_budget_then_succeeds(self):
        graph = cycle_graph(10)
        reference = _fingerprint(
            distributed_betweenness(graph, engine="shard", workers=3)
        )
        plan = FaultPlan(
            seed=5, worker_hangs=(WorkerHang(shard=1, round=5, repeats=2),)
        )
        recovered = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            faults=plan,
            supervision=SupervisionConfig(
                heartbeat_timeout=0.5, max_restarts=3, backoff_base=0.01
            ),
        )
        assert _fingerprint_sans_faults(recovered) == reference
        assert recovered.stats.supervisor["restarts"] == 2
        assert recovered.stats.supervisor["hang_detections"] == 2

    def test_slow_worker_is_not_a_false_positive(self):
        graph = cycle_graph(10)
        reference = _fingerprint(
            distributed_betweenness(graph, engine="shard", workers=3)
        )
        plan = FaultPlan(
            seed=9, slow_workers=(SlowWorker(shard=1, round=4, delay=1.2),)
        )
        tolerated = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            faults=plan,
            supervision=SupervisionConfig(heartbeat_timeout=0.5),
        )
        # The straggler keeps heartbeating through its delay, so the
        # watchdog must wait it out rather than declare it hung.
        assert _fingerprint_sans_faults(tolerated) == reference
        assert tolerated.stats.supervisor["hang_detections"] == 0
        assert tolerated.stats.supervisor["restarts"] == 0

    def test_budget_exhausted_degrades_to_partial(self):
        graph = cycle_graph(10)
        plan = FaultPlan(
            seed=7, worker_hangs=(WorkerHang(shard=1, round=5, repeats=99),)
        )
        result = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            faults=plan,
            resilient=True,
            supervision=SupervisionConfig(
                heartbeat_timeout=0.5, max_restarts=0
            ),
        )
        # No restart budget: the shard is abandoned and the run returns
        # a partial CompletenessReport instead of stalling forever.
        assert not result.completeness.complete
        sup = result.stats.supervisor
        assert sup["shards_abandoned"] == [1]
        assert sup["restarts"] == 0
        assert sup["hang_detections"] >= 1

    def test_corrupt_newest_checkpoint_falls_back_to_older(self, tmp_path):
        graph = cycle_graph(12)
        reference = _fingerprint(
            distributed_betweenness(graph, engine="shard", workers=3)
        )
        # Every snapshot this plan writes at round 8 is corrupted on
        # disk right after the write; the hang at round 9 then forces a
        # rollback, which must reject round 8 and restore round 4.
        plan = FaultPlan(
            seed=13,
            worker_hangs=(WorkerHang(shard=1, round=9),),
            corrupt_checkpoint_rounds=(8,),
        )
        recovered = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            faults=plan,
            supervision=SupervisionConfig(
                heartbeat_timeout=0.5,
                max_restarts=2,
                checkpoint_every=4,
                checkpoint_dir=str(tmp_path),
            ),
        )
        assert _fingerprint_sans_faults(recovered) == reference
        assert recovered.stats.supervisor["restarts"] == 1


# ----------------------------------------------------------------------
# shutdown escalation
# ----------------------------------------------------------------------
def _sigterm_immune_child():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(3600)


class TestShutdownEscalation:
    def test_kill_escalation_reaps_a_sigterm_immune_child(self):
        from repro.shard.runtime import _Coordinator

        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_sigterm_immune_child, daemon=True)
        proc.start()
        child_conn.close()
        fake = types.SimpleNamespace(
            children=[(1, parent_conn, proc)],
            alive=[True, False],
            _join_timeout=0.2,
        )
        start = time.monotonic()
        _Coordinator.shutdown(fake, notify=False)
        elapsed = time.monotonic() - start
        assert not proc.is_alive()
        # join(0.2) + terminate + join(0.2) + kill + join(0.2): well
        # under the old block-forever behaviour.
        assert elapsed < 5.0
        proc.join()


# ----------------------------------------------------------------------
# history ledger fields
# ----------------------------------------------------------------------
class TestHistoryFields:
    def test_restart_and_resume_fields_do_not_fork_the_key(self, tmp_path):
        graph = cycle_graph(12)
        plain = distributed_betweenness(graph, engine="shard", workers=3)
        plan = FaultPlan(seed=7, worker_hangs=(WorkerHang(shard=1, round=9),))
        recovered = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            faults=plan,
            supervision=SupervisionConfig(
                heartbeat_timeout=0.5, max_restarts=1
            ),
        )
        entry_plain = entry_from_result(plain, graph, git_rev="t")
        entry_rec = entry_from_result(recovered, graph, git_rev="t")
        assert entry_plain["workers_restarted"] == 0
        assert entry_plain["resumed_from"] is None
        assert entry_rec["workers_restarted"] == 1
        assert entry_rec["resumed_from"] is None
        # Restart history is operational noise, not identity: the two
        # runs computed the same thing under the same config... except
        # the fault plan, which legitimately forks the key.  Compare a
        # resumed run against its uninterrupted twin instead.
        supervised = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            checkpoint_every=4,
            checkpoint_dir=str(tmp_path),
        )
        resumed = distributed_betweenness(
            graph,
            engine="shard",
            workers=3,
            resume_from=str(resolve_checkpoint(tmp_path)),
        )
        entry_sup = entry_from_result(supervised, graph, git_rev="t")
        entry_res = entry_from_result(resumed, graph, git_rev="t")
        assert entry_res["resumed_from"] is not None
        assert entry_res["key"] == entry_sup["key"] == entry_plain["key"]


# ----------------------------------------------------------------------
# failure-path plumbing
# ----------------------------------------------------------------------
class TestWorkerFailure:
    def test_carries_shard_and_reason(self):
        failure = WorkerFailure(2, "hung", "no heartbeat for 1.0s")
        assert failure.shard == 2
        assert failure.reason == "hung"
        assert "no heartbeat" in str(failure)
