"""Tests for the protocol-family variants: stress, sampling, config knobs."""

import pytest
from hypothesis import given, settings

from repro.centrality import brandes_betweenness, stress_centrality
from repro.core import (
    ProtocolConfig,
    distributed_betweenness,
    distributed_sampled_betweenness,
    distributed_stress,
)
from repro.graphs import (
    cycle_graph,
    figure1_graph,
    grid_graph,
    karate_club_graph,
    lollipop_graph,
    path_graph,
    random_tree,
    star_graph,
)

from .conftest import connected_graphs


class TestProtocolConfig:
    def test_defaults_are_paper_algorithm(self):
        config = ProtocolConfig()
        assert config.is_source(0) and config.is_target(0)
        assert config.unit == "betweenness"
        assert config.aggregate

    def test_source_and_target_membership(self):
        config = ProtocolConfig(sources=frozenset({1, 2}), targets=frozenset({2}))
        assert config.is_source(1) and not config.is_source(0)
        assert config.is_target(2) and not config.is_target(1)
        assert config.expected_sources(10) == 2

    def test_expected_sources_all_mode(self):
        config = ProtocolConfig()
        assert config.expected_sources(None) is None
        assert config.expected_sources(7) == 7

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            ProtocolConfig(unit="pagerank")

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            ProtocolConfig(sources=frozenset())

    def test_sets_coerced_frozen(self):
        config = ProtocolConfig(sources={1, 2}, targets={3})
        assert isinstance(config.sources, frozenset)
        assert isinstance(config.targets, frozenset)


class TestDistributedStress:
    @pytest.mark.parametrize(
        "graph",
        [figure1_graph(), path_graph(7), star_graph(7), cycle_graph(9),
         grid_graph(3, 4), lollipop_graph(4, 3), random_tree(12, seed=4),
         karate_club_graph()],
        ids=lambda g: g.name,
    )
    def test_matches_centralized_stress_exactly(self, graph):
        result = distributed_stress(graph)
        assert result.stress == stress_centrality(graph)

    @given(connected_graphs(max_nodes=10))
    @settings(max_examples=12, deadline=None)
    def test_random_graphs(self, graph):
        assert distributed_stress(graph).stress == stress_centrality(graph)

    def test_integral_output(self):
        result = distributed_stress(karate_club_graph())
        assert all(isinstance(v, int) for v in result.stress.values())

    def test_lfloat_mode_approximates(self):
        graph = grid_graph(3, 4)
        approx = distributed_stress(graph, arithmetic="lfloat")
        exact = stress_centrality(graph)
        for v in graph.nodes():
            if exact[v]:
                assert approx.stress[v] == pytest.approx(exact[v], rel=1e-2)

    def test_result_metadata(self):
        result = distributed_stress(path_graph(6))
        assert result.diameter == 5
        assert result.rounds > 0
        assert result.arithmetic == "exact"


class TestSampledDistributedBC:
    def test_full_pivot_set_is_exact(self):
        graph = karate_club_graph()
        result = distributed_sampled_betweenness(
            graph, graph.num_nodes, seed=1, arithmetic="exact"
        )
        exact = brandes_betweenness(graph)
        for v in graph.nodes():
            assert result.estimate[v] == pytest.approx(float(exact[v]))

    def test_partial_pivots_reduce_messages(self):
        graph = karate_club_graph()
        sampled = distributed_sampled_betweenness(graph, 8, seed=2)
        full = distributed_betweenness(graph)
        assert sampled.stats.message_count < full.stats.message_count
        assert len(sampled.pivots) == 8

    def test_estimator_is_unbiased_ish(self):
        """Averaging estimates over many seeds approaches the truth."""
        graph = lollipop_graph(5, 4)
        exact = brandes_betweenness(graph)
        junction = 4
        estimates = [
            distributed_sampled_betweenness(graph, 3, seed=s).estimate[junction]
            for s in range(12)
        ]
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(float(exact[junction]), rel=0.5)

    def test_deterministic_per_seed(self):
        graph = grid_graph(3, 3)
        a = distributed_sampled_betweenness(graph, 4, seed=5)
        b = distributed_sampled_betweenness(graph, 4, seed=5)
        assert a.estimate == b.estimate
        assert a.pivots == b.pivots

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            distributed_sampled_betweenness(path_graph(4), 0)
        with pytest.raises(ValueError):
            distributed_sampled_betweenness(path_graph(4), 9)

    def test_start_times_only_for_pivots(self):
        graph = cycle_graph(10)
        result = distributed_sampled_betweenness(
            graph, 3, seed=7, arithmetic="exact"
        )
        # the underlying run recorded start times for pivots only
        assert len(result.pivots) == 3

    def test_diameter_bound_leq_true_diameter(self):
        from repro.graphs import diameter

        graph = grid_graph(4, 4)
        result = distributed_sampled_betweenness(graph, 5, seed=3)
        assert result.diameter_bound <= diameter(graph)


class TestSourceSubsetInternals:
    def test_non_source_nodes_skip_bfs(self):
        graph = path_graph(6)
        config = ProtocolConfig(sources=frozenset({0, 3}))
        result = distributed_betweenness(
            graph, arithmetic="exact", config=config
        )
        assert set(result.start_times) == {0, 3}
        for node in result.nodes:
            assert len(node.ledger) == 2

    def test_subset_dependencies_match_brandes_per_source(self):
        from repro.centrality import (
            accumulate_dependencies,
            single_source_shortest_paths,
        )

        graph = grid_graph(3, 3)
        sources = frozenset({0, 4, 8})
        result = distributed_betweenness(
            graph,
            arithmetic="exact",
            config=ProtocolConfig(sources=sources),
        )
        for s in sources:
            delta = accumulate_dependencies(
                single_source_shortest_paths(graph, s), exact=True
            )
            for v in graph.nodes():
                if v != s:
                    assert result.dependency(s, v) == delta[v]

    def test_lemma4_holds_for_subsets(self):
        """The separation invariant covers any source subset."""
        from repro.core import verify_separation

        graph = karate_club_graph()
        config = ProtocolConfig(sources=frozenset(range(0, 34, 3)))
        result = distributed_betweenness(
            graph, arithmetic="exact", config=config
        )
        assert verify_separation(graph, result.start_times)
