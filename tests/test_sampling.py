"""Tests for the sampling-based BC approximations (related work)."""

import pytest

from repro.centrality import (
    adaptive_sampled_betweenness,
    brandes_betweenness,
    required_samples,
    sampled_betweenness,
)
from repro.graphs import Graph, karate_club_graph, lollipop_graph, star_graph


class TestPivotSampling:
    def test_full_sample_equals_exact(self):
        """k = N pivots without replacement == the exact computation."""
        g = karate_club_graph()
        exact = brandes_betweenness(g)
        estimate = sampled_betweenness(g, num_samples=g.num_nodes, seed=1)
        for v in g.nodes():
            assert estimate[v] == pytest.approx(exact[v], abs=1e-9)

    def test_deterministic_per_seed(self):
        g = karate_club_graph()
        a = sampled_betweenness(g, 10, seed=7)
        b = sampled_betweenness(g, 10, seed=7)
        c = sampled_betweenness(g, 10, seed=8)
        assert a == b
        assert a != c

    def test_estimate_reasonable_on_star(self):
        g = star_graph(30)
        estimate = sampled_betweenness(g, 10, seed=3)
        exact = brandes_betweenness(g)
        # hub value is huge, leaves are 0; ranking must hold
        assert estimate[0] > max(estimate[v] for v in range(1, 30))
        assert estimate[0] == pytest.approx(exact[0], rel=0.5)

    def test_more_samples_than_nodes(self):
        g = star_graph(5)
        estimate = sampled_betweenness(g, 50, seed=0)
        assert estimate[0] > 0

    def test_zero_samples(self):
        g = star_graph(5)
        assert sampled_betweenness(g, 0) == {v: 0.0 for v in g.nodes()}

    def test_normalized(self):
        g = star_graph(6)
        est = sampled_betweenness(g, g.num_nodes, seed=0, normalized=True)
        assert est[0] == pytest.approx(1.0)

    def test_normalized_tiny(self):
        g = Graph(2, [(0, 1)])
        assert sampled_betweenness(g, 2, normalized=True) == {0: 0.0, 1: 0.0}


class TestRequiredSamples:
    def test_formula(self):
        assert required_samples(1000, 0.1, 0.1) == pytest.approx(
            921.04, abs=1.0
        )

    def test_monotone_in_eps(self):
        assert required_samples(100, 0.05, 0.1) > required_samples(
            100, 0.1, 0.1
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            required_samples(10, 0.0, 0.1)
        with pytest.raises(ValueError):
            required_samples(10, 0.1, 1.5)

    def test_tiny_graph(self):
        assert required_samples(1, 0.1, 0.1) == 1


class TestAdaptiveSampling:
    def test_high_centrality_node_stops_early(self):
        g = lollipop_graph(8, 8)
        junction = 7
        estimate, used = adaptive_sampled_betweenness(
            g, junction, c=2.0, seed=1
        )
        exact = brandes_betweenness(g)[junction]
        assert used < g.num_nodes  # stopped before exhausting the budget
        assert estimate == pytest.approx(exact, rel=0.8)

    def test_low_centrality_node_uses_full_budget(self):
        g = star_graph(20)
        _estimate, used = adaptive_sampled_betweenness(g, 5, c=5.0, seed=1)
        assert used == g.num_nodes

    def test_budget_respected(self):
        g = karate_club_graph()
        _e, used = adaptive_sampled_betweenness(g, 0, seed=2, max_samples=7)
        assert used <= 7

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            adaptive_sampled_betweenness(star_graph(4), 99)

    def test_tiny_graph(self):
        assert adaptive_sampled_betweenness(Graph(2, [(0, 1)]), 0) == (0.0, 0)
