"""Protocol registry, the cfp-bc rival, and protocol-aware plumbing.

The registry's contract: a :class:`~repro.protocols.Protocol` descriptor
is the single place a node algorithm declares its factory, wire
messages, capability flags and schedule oracle — and every layer
(dispatcher, pipeline, telemetry, history, CLI) consults the descriptor
instead of hard-coding the stock node class.  The differential matrix
at the bottom is the empirical half: every registered protocol must
agree with exact Brandes and with every other protocol, on every graph
of the zoo, on both scheduling engines.
"""

import dataclasses
import pickle

import pytest

from repro.centrality import brandes_betweenness
from repro.core import distributed_betweenness
from repro.core.node import BetweennessNode, make_node_factory
from repro.arithmetic.context import make_context
from repro.congest.simulator import Simulator
from repro.exceptions import EngineCapabilityError, ProtocolError, ReproError
from repro.faults import FaultPlan
from repro.graphs import (
    cycle_graph,
    figure1_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    star_graph,
)
from repro.protocols import (
    CFP_BC,
    DEFAULT_PROTOCOL,
    HUA_BC,
    UnknownProtocolError,
    get_protocol,
    protocol_names,
    protocol_of_node,
    register,
)
from repro.protocols.cfp import CfpNode


ZOO = (
    path_graph(7),
    cycle_graph(6),
    grid_graph(3, 3),
    star_graph(6),
    lollipop_graph(4, 3),
    figure1_graph(),
)
ENGINES = ("sweep", "event")


def _numpy_available():
    from repro.engines import numpy_available

    return numpy_available()


# ----------------------------------------------------------------------
# registry contract
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_protocols_registered(self):
        names = protocol_names()
        assert "hua-bc" in names and "cfp-bc" in names
        assert DEFAULT_PROTOCOL == "hua-bc"

    def test_get_protocol_resolution(self):
        assert get_protocol(None) is HUA_BC
        assert get_protocol("hua-bc") is HUA_BC
        assert get_protocol("cfp-bc") is CFP_BC
        # Descriptor passthrough: an unregistered descriptor is usable
        # directly (ad-hoc protocol variants without global state).
        adhoc = dataclasses.replace(HUA_BC, name="adhoc-bc")
        assert get_protocol(adhoc) is adhoc

    def test_unknown_protocol_lists_registered_names(self):
        with pytest.raises(UnknownProtocolError) as exc:
            get_protocol("dijkstra-bc")
        assert "hua-bc" in str(exc.value)
        assert isinstance(exc.value, ReproError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register(HUA_BC)

    def test_protocol_of_node_exact_class_match(self):
        ctx = make_context("lfloat", 4)
        hua_node = make_node_factory(0, ctx)(0, (1,))
        cfp_node = CFP_BC.build_factory(0, ctx)(0, (1,))
        assert protocol_of_node(hua_node) is HUA_BC
        assert protocol_of_node(cfp_node) is CFP_BC

        class CustomNode(BetweennessNode):
            pass

        custom = make_node_factory(0, ctx, node_class=CustomNode)(0, (1,))
        assert protocol_of_node(custom) is None

    def test_descriptor_flags(self):
        assert HUA_BC.bulk_capable and HUA_BC.fault_wrappable
        assert not CFP_BC.bulk_capable
        assert CFP_BC.fault_wrappable
        assert CFP_BC.node_class is CfpNode
        assert HUA_BC.messages == CFP_BC.messages  # same wire set


# ----------------------------------------------------------------------
# dispatcher regressions (satellite: capability gating by descriptor)
# ----------------------------------------------------------------------
class TestDispatcherProtocolGate:
    def test_auto_with_cfp_falls_back_to_event_naming_protocol(self):
        graph = path_graph(6)
        ctx = make_context("lfloat", graph.num_nodes)
        sim = Simulator(
            graph, CFP_BC.build_factory(0, ctx), engine="auto"
        )
        assert sim.engine == "event"
        assert "cfp-bc" in sim.engine_decision.reason

    @pytest.mark.skipif(
        not _numpy_available(), reason="bulk engine needs numpy"
    )
    def test_explicit_bulk_with_cfp_raises_naming_protocol(self):
        graph = path_graph(6)
        ctx = make_context("lfloat", graph.num_nodes)
        with pytest.raises(EngineCapabilityError, match="cfp-bc"):
            Simulator(graph, CFP_BC.build_factory(0, ctx), engine="bulk")

    def test_unregistered_custom_node_still_falls_back(self):
        class CustomNode(BetweennessNode):
            pass

        graph = path_graph(6)
        ctx = make_context("lfloat", graph.num_nodes)
        factory = make_node_factory(0, ctx, node_class=CustomNode)
        sim = Simulator(graph, factory, engine="auto")
        assert sim.protocol is None
        assert sim.engine == "event"

    @pytest.mark.skipif(
        not _numpy_available(), reason="bulk engine needs numpy"
    )
    def test_auto_with_hua_still_takes_bulk(self):
        result = distributed_betweenness(
            path_graph(8), engine="auto", protocol="hua-bc"
        )
        assert result.stats.engine == "bulk"

    def test_pipeline_records_engine_reason_in_telemetry(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        distributed_betweenness(
            path_graph(6),
            engine="auto",
            protocol="cfp-bc",
            telemetry=telemetry,
        )
        meta = telemetry.events()[0]
        assert meta["protocol"] == "cfp-bc"
        assert meta["engine"] == "event"
        assert "cfp-bc" in meta.get("engine_reason", "")


# ----------------------------------------------------------------------
# pipeline + telemetry threading
# ----------------------------------------------------------------------
class TestPipelineThreading:
    def test_result_carries_protocol_name(self):
        graph = path_graph(6)
        assert distributed_betweenness(graph).protocol == "hua-bc"
        assert (
            distributed_betweenness(graph, protocol="cfp-bc").protocol
            == "cfp-bc"
        )

    def test_fault_wrappable_false_rejects_resilient_transport(self):
        closed = dataclasses.replace(
            HUA_BC, name="hua-sealed", fault_wrappable=False
        )
        with pytest.raises(ProtocolError, match="hua-sealed"):
            distributed_betweenness(
                path_graph(6),
                protocol=closed,
                faults=FaultPlan(seed=1, drop_rate=0.05),
                resilient=True,
                engine="event",
            )

    def test_telemetry_exports_ledger_storage_gauges(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        graph = path_graph(6)
        distributed_betweenness(graph, telemetry=telemetry, engine="event")
        records = telemetry.registry.gauge("ledger.records").value
        words = telemetry.registry.gauge("ledger.words").value
        # Full protocol: every node holds one record per source.
        assert records == graph.num_nodes * graph.num_nodes
        assert words > 4 * records

    def test_run_many_threads_protocol(self):
        from repro.analysis.runner import run_many

        graphs = [path_graph(6), cycle_graph(5)]
        cfp = run_many(graphs, protocol="cfp-bc", processes=1)
        hua = run_many(graphs, protocol="hua-bc", processes=1)
        # The rival's structural totals are identical by design.
        assert [(r.rounds, r.bits) for r in cfp] == [
            (r.rounds, r.bits) for r in hua
        ]

    def test_history_keys_differ_per_protocol(self):
        from repro.obs.history import entry_from_result

        graph = path_graph(6)
        hua = distributed_betweenness(graph, engine="event")
        cfp = distributed_betweenness(graph, engine="event", protocol="cfp-bc")
        entry_hua = entry_from_result(hua, graph)
        entry_cfp = entry_from_result(cfp, graph)
        assert entry_hua["config"]["protocol"] == "hua-bc"
        assert entry_cfp["config"]["protocol"] == "cfp-bc"
        assert entry_hua["key"] != entry_cfp["key"]


# ----------------------------------------------------------------------
# the differential matrix (satellite: every protocol vs Brandes and
# vs each other, graph zoo x sweep+event)
# ----------------------------------------------------------------------
class TestDifferentialMatrix:
    @pytest.mark.parametrize("graph", ZOO, ids=lambda g: g.name)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_protocol_matches_brandes_and_each_other(
        self, graph, engine
    ):
        reference = brandes_betweenness(graph, exact=True)
        outputs = {}
        for name in protocol_names():
            result = distributed_betweenness(
                graph, arithmetic="exact", engine=engine, protocol=name
            )
            assert result.betweenness_exact == reference, (
                "{} vs Brandes on {} ({})".format(name, graph.name, engine)
            )
            outputs[name] = (
                tuple(sorted(result.betweenness_exact.items())),
                result.rounds,
                result.stats.bit_count,
                result.stats.message_count,
            )
        fingerprints = set(outputs.values())
        assert len(fingerprints) == 1, (
            "protocols disagree on {} ({}): {}".format(
                graph.name, engine, outputs
            )
        )

    def test_protocols_diverge_in_traffic_timing(self):
        """Equal totals, different schedules: the trace-level proof that
        cfp-bc is a genuinely different protocol, not an alias."""
        from repro.congest import Tracer
        from repro.obs.tracediff import first_divergence

        graph = path_graph(7)
        traces = {}
        for name in ("hua-bc", "cfp-bc"):
            tracer = Tracer(capture_payloads=True)
            distributed_betweenness(
                graph, engine="event", tracer=tracer, protocol=name
            )
            traces[name] = tracer
        divergence = first_divergence(
            traces["hua-bc"], traces["cfp-bc"]
        )
        assert divergence is not None
        assert len(traces["hua-bc"]) == len(traces["cfp-bc"])

    @pytest.mark.parametrize("name", ("hua-bc", "cfp-bc"))
    def test_chaos_recovery_is_exact_for_every_protocol(self, name):
        """The generic fault wrapper recovers bit-exact BC for any
        fault_wrappable protocol, not just the stock one."""
        graph = grid_graph(3, 3)
        plan = FaultPlan(seed=5, drop_rate=0.08, duplicate_rate=0.03)
        clean = distributed_betweenness(
            graph, engine="event", protocol=name
        )
        recovered = distributed_betweenness(
            graph,
            engine="event",
            protocol=name,
            faults=plan,
            resilient=True,
        )
        assert recovered.completeness.complete
        assert recovered.betweenness == clean.betweenness
        assert recovered.protocol == name

    def test_cfp_schedule_oracle_matches_observed_rounds(self):
        """CFP shares the stock schedule oracle: its progress estimator
        total equals the run's actual round count."""
        from repro.obs.stream import schedule_for_simulator

        graph = path_graph(6)
        ctx = make_context("lfloat", graph.num_nodes)
        sim = Simulator(
            graph, CFP_BC.build_factory(0, ctx), engine="event"
        )
        schedule = schedule_for_simulator(sim)
        assert schedule is not None
        stats = sim.run()
        assert stats.rounds == schedule.total_rounds

    def test_scheduleless_protocol_runs_without_estimator_total(self):
        from repro.obs.stream import schedule_for_simulator

        graph = path_graph(6)
        ctx = make_context("lfloat", graph.num_nodes)
        blind = dataclasses.replace(CFP_BC, name="cfp-blind", schedule=None)
        sim = Simulator(
            graph, blind.build_factory(0, ctx), engine="event",
            protocol=blind,
        )
        assert schedule_for_simulator(sim) is None
        sim.run()  # still terminates


# ----------------------------------------------------------------------
# arena history gates
# ----------------------------------------------------------------------
class TestArenaHistory:
    PAYLOAD = {
        "benchmark": "protocol_arena",
        "arithmetic": "lfloat",
        "rows": [
            {
                "protocol": "hua-bc", "family": "path", "n": 24,
                "engine": "event", "rounds": 262, "bits": 79362,
                "messages": 1863, "wall_seconds": 0.01,
                "matches_brandes": True,
            },
            {
                "protocol": "cfp-bc", "family": "path", "n": 24,
                "engine": "event", "rounds": 262, "bits": 79362,
                "messages": 1863, "wall_seconds": 0.01,
                "matches_brandes": True,
            },
        ],
    }

    def test_identical_payloads_pass(self):
        from repro.obs.history import compare_payloads

        violations, compared = compare_payloads(self.PAYLOAD, self.PAYLOAD)
        assert compared == 2 and not violations

    def test_structural_drift_is_a_hard_violation(self):
        import copy

        from repro.obs.history import compare_payloads

        current = copy.deepcopy(self.PAYLOAD)
        current["rows"][1]["bits"] += 8
        violations, _ = compare_payloads(self.PAYLOAD, current)
        assert any(v.gate == "bits" and v.hard for v in violations)
        assert any("cfp-bc" in v.message for v in violations)

    def test_brandes_flip_is_a_hard_violation(self):
        import copy

        from repro.obs.history import compare_payloads

        current = copy.deepcopy(self.PAYLOAD)
        current["rows"][0]["matches_brandes"] = False
        violations, _ = compare_payloads(self.PAYLOAD, current)
        assert any(v.gate == "identity" and v.hard for v in violations)

    def test_missing_protocol_row_reports_coverage(self):
        import copy

        from repro.obs.history import compare_payloads

        current = copy.deepcopy(self.PAYLOAD)
        del current["rows"][1]
        violations, compared = compare_payloads(self.PAYLOAD, current)
        assert compared == 1
        assert any(v.gate == "coverage" for v in violations)

    def test_ledger_ingests_arena_rows(self, tmp_path):
        from repro.obs.history import HistoryLedger

        ledger = HistoryLedger(str(tmp_path / "history.jsonl"))
        count = ledger.ingest_bench_arena(self.PAYLOAD, git_rev="abc123")
        assert count == 2
        stored = ledger.entries(kind="bench_arena")
        assert {row["protocol"] for row in stored} == {"hua-bc", "cfp-bc"}
        # Same config, different protocol -> different content keys.
        assert stored[0]["key"] != stored[1]["key"]


# ----------------------------------------------------------------------
# descriptor pickling (grids ship protocol names, but a descriptor
# reaching a pickle boundary must not explode either)
# ----------------------------------------------------------------------
def test_protocol_descriptor_is_picklable():
    clone = pickle.loads(pickle.dumps(HUA_BC))
    assert clone.name == "hua-bc"
    assert clone.node_class is BetweennessNode
