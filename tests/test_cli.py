"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_graph_spec
from repro.graphs import Graph, dumps_edge_list, karate_club_graph


class TestGraphSpecs:
    def test_named_graphs(self):
        assert parse_graph_spec("karate").num_nodes == 34
        assert parse_graph_spec("figure1").num_nodes == 5
        assert parse_graph_spec("path:7").num_nodes == 7
        assert parse_graph_spec("cycle:6").num_edges == 6
        assert parse_graph_spec("star:5").degree(0) == 4
        assert parse_graph_spec("complete:4").num_edges == 6
        assert parse_graph_spec("grid:3x4").num_nodes == 12
        assert parse_graph_spec("tree:2:3").num_nodes == 15
        assert parse_graph_spec("hypercube:3").num_nodes == 8
        assert parse_graph_spec("diamonds:4").num_nodes == 13
        assert parse_graph_spec("er:10:0.5:3").num_nodes == 10

    def test_unknown_graph(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("petersen")

    def test_malformed_args(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("path:xyz")
        with pytest.raises(SystemExit):
            parse_graph_spec("grid:3")


class TestCommands:
    def run(self, *argv):
        return main(list(argv))

    def test_bc(self, capsys):
        assert self.run("bc", "--graph", "figure1", "--arithmetic", "exact") == 0
        out = capsys.readouterr().out
        assert "3.5" in out
        assert "rounds=51" in out

    def test_bc_check(self, capsys):
        assert self.run("bc", "--graph", "path:6", "--check") == 0
        assert "Brandes" in capsys.readouterr().out

    def test_bc_from_file(self, tmp_path, capsys):
        path = tmp_path / "g.edges"
        path.write_text(dumps_edge_list(karate_club_graph()))
        assert self.run("bc", "--file", str(path), "--top", "3") == 0
        assert "N=34" in capsys.readouterr().out

    def test_bc_disconnected_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.edges"
        path.write_text(dumps_edge_list(Graph(4, [(0, 1), (2, 3)])))
        assert self.run("bc", "--file", str(path)) == 1
        assert "not connected" in capsys.readouterr().err

    def test_apsp(self, capsys):
        assert self.run("apsp", "--graph", "star:6") == 0
        assert "closeness" in capsys.readouterr().out

    def test_stress(self, capsys):
        assert self.run("stress", "--graph", "path:5") == 0
        out = capsys.readouterr().out
        assert "stress" in out

    def test_sample(self, capsys):
        assert self.run(
            "sample", "--graph", "karate", "--pivots", "5", "--seed", "1"
        ) == 0
        assert "k=5" in capsys.readouterr().out

    def test_schedule_shortcut_matches_paper(self, capsys):
        assert self.run("schedule", "--graph", "figure1") == 0
        out = capsys.readouterr().out
        assert "BFS start times" in out
        assert "shortcut" in out

    def test_gadget_diameter(self, capsys):
        assert self.run("gadget", "diameter", "--intersect") == 0
        out = capsys.readouterr().out
        assert "Lemma 8" in out

    def test_gadget_bc(self, capsys):
        assert self.run("gadget", "bc", "--seed", "2") == 0
        assert "Lemma 9" in capsys.readouterr().out

    def test_info(self, capsys):
        assert self.run("info", "--graph", "hypercube:3") == 0
        out = capsys.readouterr().out
        assert "diameter" in out
        assert "max sigma" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            self.run()


class TestNewCommands:
    def run(self, *argv):
        return main(list(argv))

    def test_trace(self, capsys):
        assert self.run("trace", "--graph", "path:5", "--width", "30") == 0
        out = capsys.readouterr().out
        assert "BfsWave" in out
        assert "Traffic by message type" in out

    def test_elect_min_id(self, capsys):
        assert self.run("elect", "--graph", "karate") == 0
        assert "min id" in capsys.readouterr().out

    def test_elect_seeded(self, capsys):
        assert self.run("elect", "--graph", "karate", "--seed", "4") == 0
        assert "seeded" in capsys.readouterr().out

    def test_json_file_loading(self, tmp_path, capsys):
        from repro.graphs import dumps_json, path_graph

        path = tmp_path / "g.json"
        path.write_text(dumps_json(path_graph(5)))
        assert self.run("info", "--file", str(path)) == 0
        assert "path-5" in capsys.readouterr().out

    def test_weighted_json_bc(self, tmp_path, capsys):
        from repro.graphs import WeightedGraph, dumps_json

        wg = WeightedGraph(4, [(0, 1, 2), (1, 2, 1), (2, 3, 2), (0, 3, 5)])
        path = tmp_path / "wg.json"
        path.write_text(dumps_json(wg))
        assert self.run("bc", "--file", str(path), "--check") == 0
        out = capsys.readouterr().out
        assert "weighted betweenness" in out
        assert "virtual" in out

    def test_weighted_json_info(self, tmp_path, capsys):
        from repro.graphs import WeightedGraph, dumps_json

        wg = WeightedGraph(3, [(0, 1, 4), (1, 2, 1)])
        path = tmp_path / "wg.json"
        path.write_text(dumps_json(wg))
        assert self.run("info", "--file", str(path)) == 0
        out = capsys.readouterr().out
        assert "total weight" in out
        assert "weighted diameter" in out


class TestChaosCommand:
    def run(self, *argv):
        return main(list(argv))

    def test_chaos_recovers_and_checks(self, capsys):
        assert (
            self.run(
                "chaos",
                "--graph",
                "figure1",
                "--arithmetic",
                "exact",
                "--drop",
                "0.1",
                "--seed",
                "7",
                "--check",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "check OK" in out
        assert "Recovered betweenness" in out

    def test_chaos_check_lfloat_is_differential(self, capsys):
        # Under L-bit floats the protocol differs from Brandes by the
        # Theorem 1 envelope even without faults, so --check compares
        # against a fault-free run of the same arithmetic instead.
        assert (
            self.run(
                "chaos",
                "--graph",
                "er:14:0.3:5",
                "--drop",
                "0.08",
                "--dup",
                "0.02",
                "--corrupt",
                "0.01",
                "--seed",
                "7",
                "--check",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "check OK" in out
        assert "fault-free run" in out

    def test_chaos_partial_exits_2(self, capsys):
        assert (
            self.run(
                "chaos",
                "--graph",
                "figure1",
                "--crash",
                "3@40",
                "--seed",
                "1",
            )
            == 2
        )
        out = capsys.readouterr().out
        assert "Partial betweenness" in out
        assert "affected sources" in out

    def test_chaos_plan_round_trip(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert (
            self.run(
                "chaos",
                "--graph",
                "figure1",
                "--drop",
                "0.05",
                "--seed",
                "3",
                "--plan-out",
                str(plan_path),
            )
            == 0
        )
        capsys.readouterr()
        assert (
            self.run(
                "chaos", "--graph", "figure1", "--plan", str(plan_path)
            )
            == 0
        )
        assert "seed=3" in capsys.readouterr().out

    def test_chaos_bad_crash_spec(self):
        with pytest.raises(SystemExit):
            self.run("chaos", "--graph", "figure1", "--crash", "banana")

    def test_chaos_frame_audit_rejected(self):
        with pytest.raises(SystemExit):
            self.run("chaos", "--graph", "figure1", "--frame-audit")

    def test_report_renders_non_termination(self, capsys, monkeypatch):
        # A run that trips the round limit must be rendered as the
        # structured context table, not a traceback.
        from repro.exceptions import SimulationNotTerminatedError

        def never_finishes(graph, **kwargs):
            raise SimulationNotTerminatedError(
                101, 100, (2, 5), graph_name=graph.name
            )

        import repro.cli as cli

        monkeypatch.setattr(cli, "distributed_betweenness", never_finishes)
        assert self.run("report", "--graph", "path:6") == 1
        out = capsys.readouterr().out
        assert "did NOT terminate" in out
        assert "round limit" in out
        assert "[2, 5]" in out
