"""Differential suite: every engine must match the sweep engine bit for bit.

The sweep engine (`engine="sweep"`) is the assumption-free reference:
every node is stepped every round.  The event engine skips idle nodes
and fast-forwards idle rounds, relying on the active-set invariant
(`docs/simulator.md`).  The bulk engine replaces the round loop
entirely with a closed-form numpy schedule (`docs/simulator.md`,
"Bulk engine") and only supports the lfloat protocol envelope.  These
tests run the full betweenness protocol — and smaller purpose-built
protocols exercising self-wakes, passive messages and inbox ordering —
under all engines and require *identical* outputs: betweenness values,
rounds, per-round traffic series, worst edge, everything.
"""

import pytest

from repro.analysis.runner import run_many
from repro.congest import (
    IntMessage,
    NodeAlgorithm,
    Simulator,
    TokenMessage,
    run_protocol,
)
from repro.core import distributed_betweenness
from repro.graphs import (
    balanced_tree,
    connected_erdos_renyi_graph,
    cycle_graph,
    figure1_graph,
    path_graph,
)


def _fingerprint(result):
    """Every observable of a protocol run, in comparable form."""
    return {
        "betweenness": sorted(result.betweenness.items()),
        "diameter": result.diameter,
        "rounds": result.rounds,
        "start_times": sorted(result.start_times.items()),
        "summary": result.stats.summary(),
        "round_series": result.stats.round_series,
        "worst_edge": result.stats.worst_edge,
    }


GRAPHS = [
    figure1_graph(),
    path_graph(9),
    cycle_graph(10),
    balanced_tree(2, 3),
    connected_erdos_renyi_graph(14, 0.25, seed=1),
    connected_erdos_renyi_graph(16, 0.2, seed=2),
    connected_erdos_renyi_graph(18, 0.15, seed=3),
]


def _engines_for(arithmetic):
    """The engines able to run a given arithmetic on this machine.

    The bulk engine's capability envelope only admits the shared-lfloat
    protocol (exact sigma/psi values are unbounded rationals, not
    vectorizable), so the exact rows stay a two-way comparison; without
    numpy installed (CI's fallback leg) the lfloat rows do too.
    """
    from repro.engines import numpy_available

    engines = ["sweep", "event"]
    if arithmetic == "lfloat" and numpy_available():
        engines.append("bulk")
    return tuple(engines)


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
@pytest.mark.parametrize("arithmetic", ["exact", "lfloat"])
def test_engines_identical_on_betweenness(graph, arithmetic):
    runs = {
        engine: _fingerprint(
            distributed_betweenness(graph, arithmetic=arithmetic, engine=engine)
        )
        for engine in _engines_for(arithmetic)
    }
    reference = runs.pop("sweep")
    for engine, fingerprint in runs.items():
        assert fingerprint == reference, engine


@pytest.mark.parametrize("arithmetic", ["exact", "lfloat"])
def test_engines_identical_through_codec_path(arithmetic):
    """The frame-audit path (every message materialized through the wire
    codec) must not perturb results: every engine, audited, matches the
    unaudited reference bit for bit.  For the bulk engine the audit
    forces the per-send replay path, so this also differentials replay
    against the vectorized fast path."""
    graph = connected_erdos_renyi_graph(16, 0.25, seed=5)
    reference = _fingerprint(
        distributed_betweenness(graph, arithmetic=arithmetic, engine="sweep")
    )
    for engine in _engines_for(arithmetic):
        audited = distributed_betweenness(
            graph, arithmetic=arithmetic, engine=engine, frame_audit=True
        )
        assert _fingerprint(audited) == reference, engine


@pytest.mark.parametrize("strict", [True, False])
def test_engines_identical_nonstrict_and_strict(strict):
    graph = connected_erdos_renyi_graph(15, 0.3, seed=7)
    runs = [
        _fingerprint(
            distributed_betweenness(
                graph, arithmetic="lfloat", strict=strict, engine=engine
            )
        )
        for engine in _engines_for("lfloat")
    ]
    assert all(run == runs[0] for run in runs[1:])


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        Simulator(path_graph(3), _InboxRecorder, engine="turbo")


# ----------------------------------------------------------------------
# inbox determinism (the simulator no longer sorts inboxes per round —
# sender order must hold by construction under both engines)
# ----------------------------------------------------------------------
class _InboxRecorder(NodeAlgorithm):
    """Round 0: everyone broadcasts its id.  Then record arrival order."""

    def __init__(self, node_id, neighbors):
        super().__init__(node_id, neighbors)
        self.seen = []

    def on_round(self, ctx, inbox):
        if ctx.round_number == 0:
            ctx.broadcast(IntMessage(self.node_id))
            return
        if inbox:
            self.seen.append([sender for sender, _ in inbox])
        self.done = True


@pytest.mark.parametrize("engine", ["sweep", "event"])
def test_inbox_is_sender_sorted_without_sorting(engine):
    graph = connected_erdos_renyi_graph(20, 0.3, seed=11)
    nodes, _stats = run_protocol(graph, _InboxRecorder, engine=engine)
    for node in nodes:
        assert node.seen, "every node has neighbors, so it heard from them"
        for senders in node.seen:
            assert senders == sorted(senders)
            assert senders == sorted(node.neighbors)


# ----------------------------------------------------------------------
# self-wakes: a timer-driven protocol only correct under the wake contract
# ----------------------------------------------------------------------
class _TimerChain(NodeAlgorithm):
    """Node i fires a token to node i+1 at round 3*(i+1); pure timers.

    Between the firing rounds every node is silent, so the event engine
    fast-forwards — but only if `wake_at` is honored exactly.
    """

    def __init__(self, node_id, neighbors):
        super().__init__(node_id, neighbors)
        self.fired_at = None
        self.received_at = None

    def on_round(self, ctx, inbox):
        for sender, _message in inbox:
            self.received_at = ctx.round_number
        my_round = 3 * (self.node_id + 1)
        if ctx.round_number == my_round:
            if self.node_id + 1 in ctx.neighbors:
                ctx.send(self.node_id + 1, TokenMessage())
            self.fired_at = ctx.round_number
            self.done = True
        elif ctx.round_number < my_round:
            ctx.wake_at(my_round)


def test_wake_at_timers_match_sweep():
    graph = path_graph(6)
    results = {}
    for engine in ("sweep", "event"):
        nodes, stats = run_protocol(graph, _TimerChain, engine=engine)
        results[engine] = (
            [(n.fired_at, n.received_at) for n in nodes],
            stats.rounds,
            stats.summary(),
            stats.round_series,
        )
    assert results["sweep"] == results["event"]
    # The timers actually fired on schedule, not merely consistently.
    fired = [f for f, _ in results["event"][0]]
    assert fired == [3 * (i + 1) for i in range(6)]


def test_wake_at_rejects_non_future_rounds():
    class _BadWake(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            ctx.wake_at(ctx.round_number)  # not strictly in the future

    with pytest.raises(ValueError, match="not after the current round"):
        Simulator(path_graph(2), _BadWake, engine="event").run()


# ----------------------------------------------------------------------
# passive messages: delivered (and billed) without scheduling a step
# ----------------------------------------------------------------------
class _EchoCollector(NodeAlgorithm):
    """Node 0 broadcasts; neighbors echo; echoes are declared passive.

    The echoes must still appear in the traffic statistics and must be
    present in node 0's inbox at its next (self-scheduled) step.
    """

    def __init__(self, node_id, neighbors):
        super().__init__(node_id, neighbors)
        self.echoes = 0
        self.steps = []

    def on_round(self, ctx, inbox):
        self.steps.append(ctx.round_number)
        for _sender, message in inbox:
            if self.node_id == 0:
                self.echoes += 1
            elif 0 in ctx.neighbors:
                ctx.send(0, IntMessage(message.value + 1))
        if self.node_id != 0:
            self.done = True  # passive helpers; done nodes still step
        elif self.node_id == 0:
            if ctx.round_number == 0:
                ctx.broadcast(IntMessage(7))
                ctx.wake_at(4)  # collect echoes well after they land
            if ctx.round_number >= 4:
                self.done = True

    def message_wakes(self, sender, message):
        # Echoes returning to the root are handled without state changes
        # that affect the protocol's sends — safe to defer.
        return self.node_id != 0


@pytest.mark.parametrize("engine", ["sweep", "event"])
def test_passive_messages_are_billed_but_deferred(engine):
    graph = path_graph(3)  # node 0 - 1 - 2; only node 1 echoes to 0
    nodes, stats = run_protocol(graph, _EchoCollector, engine=engine)
    root = nodes[0]
    assert root.echoes == 1
    # Broadcast (1 msg) + echo (1 msg) billed identically on both engines.
    assert stats.summary()["messages"] == 2
    if engine == "event":
        # The echo arrives in round 2 but is passive: the root is not
        # stepped again until its registered wake at round 4.
        assert root.steps == [0, 4]


def test_event_engine_skips_idle_nodes_but_rounds_match():
    """Same rounds as sweep even though most steps are skipped."""
    graph = path_graph(40)
    fingerprints = {}
    for engine in _engines_for("lfloat"):
        result = distributed_betweenness(graph, arithmetic="lfloat", engine=engine)
        fingerprints[engine] = _fingerprint(result)
    reference = fingerprints.pop("sweep")
    for engine, fingerprint in fingerprints.items():
        assert fingerprint == reference, engine
    # Sanity: the run is long enough that skipping matters.
    assert reference["rounds"] > 400


# ----------------------------------------------------------------------
# dispatcher: engine="auto" resolution and graceful degradation
# ----------------------------------------------------------------------
def test_auto_resolves_to_bulk_with_numpy():
    """With numpy importable (tier-1 w/ extras), auto means bulk."""
    pytest.importorskip("numpy")
    from repro.engines import reset_probe

    reset_probe()
    result = distributed_betweenness(figure1_graph(), arithmetic="lfloat")
    assert result.stats.engine == "bulk"


def test_auto_without_numpy_falls_back_to_event(monkeypatch):
    """Absent numpy, auto degrades to the event engine — same results."""
    import sys

    from repro.engines import reset_probe

    reference = _fingerprint(
        distributed_betweenness(figure1_graph(), arithmetic="lfloat", engine="sweep")
    )
    monkeypatch.setitem(sys.modules, "numpy", None)
    reset_probe()
    try:
        result = distributed_betweenness(figure1_graph(), arithmetic="lfloat")
        assert result.stats.engine == "event"
        assert _fingerprint(result) == reference
    finally:
        monkeypatch.undo()
        reset_probe()


def test_auto_falls_back_to_event_for_exact_arithmetic():
    """Exact arithmetic is outside the bulk envelope; auto must not pick it."""
    result = distributed_betweenness(figure1_graph(), arithmetic="exact")
    assert result.stats.engine == "event"


def test_explicit_bulk_rejects_exact_arithmetic():
    pytest.importorskip("numpy")
    from repro.exceptions import EngineCapabilityError

    with pytest.raises(EngineCapabilityError, match="L-float"):
        distributed_betweenness(
            figure1_graph(), arithmetic="exact", engine="bulk"
        )


def test_explicit_bulk_without_numpy_raises(monkeypatch):
    import sys

    from repro.engines import reset_probe
    from repro.exceptions import EngineCapabilityError

    monkeypatch.setitem(sys.modules, "numpy", None)
    reset_probe()
    try:
        with pytest.raises(EngineCapabilityError, match="numpy"):
            distributed_betweenness(
                figure1_graph(), arithmetic="lfloat", engine="bulk"
            )
    finally:
        monkeypatch.undo()
        reset_probe()


# ----------------------------------------------------------------------
# parallel runner: fan-out must not change results
# ----------------------------------------------------------------------
def test_run_many_parallel_matches_serial():
    graphs = [path_graph(8), cycle_graph(9), connected_erdos_renyi_graph(10, 0.3, seed=5)]
    serial = run_many(graphs, family="grid", processes=1)
    parallel = run_many(graphs, family="grid", processes=2)
    assert [r.__dict__ for r in serial] == [r.__dict__ for r in parallel]
    assert [r.graph_name for r in serial] == [g.name for g in graphs]


def test_run_many_empty_batch():
    assert run_many([], family="none") == []


# ----------------------------------------------------------------------
# tracer streams: both engines must emit the identical delivery sequence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_tracer_streams_identical_across_engines(graph):
    """Send-for-send equality, not just aggregate equality.

    Nodes act in id order and channels are FIFO under both engines, so
    the full (round, sender, receiver, type, bits) event sequence — not
    merely its totals — must be reproduced by the event engine.
    """
    from repro.congest import Tracer

    streams = {}
    for engine in _engines_for("lfloat"):
        tracer = Tracer()
        distributed_betweenness(
            graph, arithmetic="lfloat", engine=engine, tracer=tracer
        )
        assert not tracer.truncated
        streams[engine] = tracer.deliveries()
    reference = streams.pop("sweep")
    for engine, stream in streams.items():
        assert stream == reference, engine


def test_tracer_json_round_trip_preserves_stream():
    from repro.congest import Tracer

    tracer = Tracer()
    distributed_betweenness(figure1_graph(), arithmetic="exact", tracer=tracer)
    clone = Tracer.from_json(tracer.to_json())
    assert clone.deliveries() == tracer.deliveries()
    assert clone.truncated == tracer.truncated
    assert clone.summary() == tracer.summary()
    assert clone.timeline() == tracer.timeline()


def test_tracer_from_json_rejects_unknown_schema():
    from repro.congest import Tracer

    with pytest.raises(ValueError):
        Tracer.from_json('{"schema": "not-a-trace", "events": []}')
