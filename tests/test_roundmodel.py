"""Tests for the closed-form round model (exact timing oracle)."""

import pytest
from hypothesis import given, settings

from repro.core import distributed_betweenness
from repro.core.roundmodel import predict_rounds, rounds_upper_bound
from repro.graphs import (
    Graph,
    balanced_tree,
    complete_graph,
    connected_erdos_renyi_graph,
    cycle_graph,
    diameter,
    diamond_chain_graph,
    figure1_graph,
    grid_graph,
    karate_club_graph,
    path_graph,
    star_graph,
)

from .conftest import connected_graphs

GRAPHS = [
    figure1_graph(),
    path_graph(9),
    cycle_graph(10),
    star_graph(8),
    grid_graph(4, 5),
    complete_graph(7),
    balanced_tree(2, 3),
    karate_club_graph(),
    Graph(1),
    Graph(2, [(0, 1)]),
    diamond_chain_graph(6),
    connected_erdos_renyi_graph(20, 0.15, seed=3),
]


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
class TestExactPredictions:
    def test_total_rounds_exact(self, graph):
        model = predict_rounds(graph)
        run = distributed_betweenness(graph, arithmetic="exact")
        assert model.total_rounds == run.rounds

    def test_phase_anchors_exact(self, graph):
        model = predict_rounds(graph)
        run = distributed_betweenness(graph, arithmetic="exact")
        root_node = run.nodes[0]
        assert model.census_round == root_node.tree.census_round
        assert model.start_times == run.start_times
        assert model.t_max == max(run.start_times.values())
        _d, t_max, base = root_node.counting.counting_result
        assert model.agg_base == base
        assert model.t_max == t_max
        assert model.diameter == run.diameter

    def test_model_independent_of_arithmetic(self, graph):
        """Timing depends only on topology, never on the number format."""
        model = predict_rounds(graph)
        run = distributed_betweenness(graph, arithmetic="lfloat")
        assert model.total_rounds == run.rounds


class TestHypothesisAgreement:
    @given(connected_graphs(max_nodes=11))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_match(self, graph):
        model = predict_rounds(graph)
        run = distributed_betweenness(graph, arithmetic="exact")
        assert model.total_rounds == run.rounds

    @given(connected_graphs(min_nodes=3, max_nodes=10))
    @settings(max_examples=10, deadline=None)
    def test_alternate_roots_match(self, graph):
        root = graph.num_nodes - 1
        model = predict_rounds(graph, root=root)
        run = distributed_betweenness(graph, arithmetic="exact", root=root)
        assert model.total_rounds == run.rounds


class TestUpperBound:
    @pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
    def test_closed_form_bound_holds(self, graph):
        model = predict_rounds(graph)
        d = diameter(graph) if graph.num_nodes > 1 else 0
        assert model.total_rounds <= rounds_upper_bound(graph.num_nodes, d)

    def test_bound_is_linear(self):
        assert rounds_upper_bound(1000, 10) == 6 * 1000 + 8 * 10 + 3

    def test_model_internal_consistency(self):
        model = predict_rounds(karate_club_graph())
        assert model.horizon == model.agg_base + model.t_max + model.diameter
        assert model.total_rounds == model.horizon + 2
        assert model.completion_round >= max(model.last_settle.values())
