"""Tests for edge-list serialization and networkx conversion."""

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    dumps_edge_list,
    karate_club_graph,
    loads_edge_list,
    read_edge_list,
    write_edge_list,
)
from repro.graphs.convert import from_networkx, to_networkx


class TestEdgeListRoundtrip:
    def test_roundtrip_string(self):
        g = karate_club_graph()
        assert loads_edge_list(dumps_edge_list(g)) == g

    def test_roundtrip_file(self, tmp_path):
        g = Graph(4, [(0, 1), (2, 3)], name="pair")
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded == g
        assert loaded.name == "pair"

    def test_isolated_nodes_preserved_via_header(self):
        g = Graph(5, [(0, 1)])
        assert loads_edge_list(dumps_edge_list(g)).num_nodes == 5

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\n0 1\n# another\n1 2\n"
        g = loads_edge_list(text)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_string_labels_relabelled(self):
        g = loads_edge_list("alice bob\nbob carol\n")
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            loads_edge_list("justone\n")

    def test_declared_nodes_too_small_raises(self):
        with pytest.raises(GraphError):
            loads_edge_list("# nodes: 2\n0 5\n")

    def test_extra_columns_tolerated(self):
        g = loads_edge_list("0 1 weight=3\n")
        assert g.num_edges == 1

    def test_negative_ids_treated_as_labels(self):
        g = loads_edge_list("-1 0\n")
        assert g.num_nodes == 2
        assert g.num_edges == 1


class TestNetworkxConversion:
    def test_to_networkx(self):
        g = Graph(3, [(0, 1), (1, 2)], name="p3")
        nxg = to_networkx(g)
        assert sorted(nxg.nodes()) == [0, 1, 2]
        assert nxg.number_of_edges() == 2

    def test_from_networkx_roundtrip(self):
        g = karate_club_graph()
        assert from_networkx(to_networkx(g)) == g

    def test_from_networkx_relabels_sorted(self):
        nxg = nx.Graph()
        nxg.add_edge(10, 20)
        nxg.add_edge(20, 5)
        g = from_networkx(nxg)
        # sorted labels [5, 10, 20] -> ids [0, 1, 2]
        assert g.has_edge(1, 2)
        assert g.has_edge(0, 2)

    def test_from_networkx_drops_self_loops(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.num_edges == 1

    def test_from_networkx_rejects_directed(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_from_networkx_rejects_multigraph(self):
        with pytest.raises(GraphError):
            from_networkx(nx.MultiGraph([(0, 1)]))

    def test_from_networkx_unsortable_labels(self):
        nxg = nx.Graph()
        nxg.add_edge("a", 1)
        g = from_networkx(nxg)
        assert g.num_nodes == 2
