"""Tests for the Section IX gadgets: Lemma 8, Lemma 9, Theorems 5/6."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.centrality import brandes_betweenness
from repro.exceptions import LowerBoundParameterError
from repro.graphs import bfs_distances, diameter, is_connected
from repro.lowerbound import (
    build_bc_gadget,
    build_diameter_gadget,
    cut_capacity_per_round,
    disjointness_bits_lower_bound,
    family_pair,
    information_lower_bound_rounds,
    optimality_gap,
    solve_disjointness_via_bc,
    theorem_lower_bound,
)


def make_families(n, m, seed, intersect):
    return family_pair(n, m=m, seed=seed, force_intersection=intersect)


class TestDiameterGadget:
    @pytest.mark.parametrize("intersect", [True, False])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_lemma8_diameter_dichotomy(self, intersect, seed):
        x_family, y_family, m = make_families(4, 6, seed, intersect)
        gadget = build_diameter_gadget(x_family, y_family, x=9, m=m)
        assert is_connected(gadget.graph)
        expected = gadget.x + 2 if intersect else gadget.x
        assert diameter(gadget.graph) == expected
        assert gadget.expected_diameter() == expected

    @pytest.mark.parametrize("x", [8, 9, 12])
    def test_lemma8_pairwise_distances(self, x):
        x_family, y_family, m = make_families(3, 6, 2, True)
        gadget = build_diameter_gadget(x_family, y_family, x=x, m=m)
        for i in range(gadget.n):
            dist = bfs_distances(gadget.graph, gadget.s_prime[i])
            for j in range(gadget.n):
                assert (
                    dist[gadget.t_prime[j]] == gadget.expected_distance(i, j)
                )

    def test_equal_subsets_forces_detour(self):
        """When X_i = Y_j, S_i cannot reach T_j left-to-right directly."""
        x_family, y_family, m = make_families(3, 6, 0, True)
        gadget = build_diameter_gadget(x_family, y_family, x=8, m=m)
        matches = [
            (i, j)
            for i in range(3)
            for j in range(3)
            if gadget.x_family[i] == gadget.y_family[j]
        ]
        assert matches  # the pair was forced
        i, j = matches[0]
        assert gadget.expected_distance(i, j) == gadget.x + 2

    def test_cut_width_is_m_plus_one(self):
        x_family, y_family, m = make_families(4, 6, 1, None)
        gadget = build_diameter_gadget(x_family, y_family, x=10, m=m)
        assert gadget.cut_width() == m + 1

    def test_x_below_8_rejected(self):
        x_family, y_family, m = make_families(2, 4, 0, None)
        with pytest.raises(LowerBoundParameterError):
            build_diameter_gadget(x_family, y_family, x=7, m=m)

    def test_mismatched_families_rejected(self):
        x_family, y_family, m = make_families(3, 6, 0, None)
        with pytest.raises(LowerBoundParameterError):
            build_diameter_gadget(x_family[:2], y_family, x=9, m=m)

    def test_wrong_subset_size_rejected(self):
        x_family, y_family, m = make_families(2, 6, 0, None)
        bad = [frozenset({0})] + list(x_family[1:])
        with pytest.raises(LowerBoundParameterError):
            build_diameter_gadget(bad, y_family, x=9, m=m)

    def test_node_count_scales_with_x(self):
        x_family, y_family, m = make_families(2, 4, 0, None)
        small = build_diameter_gadget(x_family, y_family, x=8, m=m)
        large = build_diameter_gadget(x_family, y_family, x=16, m=m)
        # each of the m + 1 inter-side paths grows by 8 interior nodes
        assert (
            large.graph.num_nodes - small.graph.num_nodes == 8 * (m + 1)
        )


class TestBCGadget:
    @pytest.mark.parametrize("intersect", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lemma9_flag_centralities(self, intersect, seed):
        x_family, y_family, m = make_families(4, 6, seed, intersect)
        gadget = build_bc_gadget(x_family, y_family, m)
        bc = brandes_betweenness(gadget.graph, exact=True)
        for i in range(gadget.n):
            assert bc[gadget.f[i]] == gadget.expected_flag_centrality(i)

    def test_flag_values_are_1_or_3_halves_only(self):
        x_family, y_family, m = make_families(5, 6, 3, True)
        gadget = build_bc_gadget(x_family, y_family, m)
        bc = brandes_betweenness(gadget.graph, exact=True)
        values = {bc[f] for f in gadget.f}
        assert values <= {Fraction(1), Fraction(3, 2)}
        assert Fraction(3, 2) in values

    def test_s_t_distances(self):
        x_family, y_family, m = make_families(4, 6, 1, True)
        gadget = build_bc_gadget(x_family, y_family, m)
        for i in range(gadget.n):
            dist = bfs_distances(gadget.graph, gadget.s[i])
            for j in range(gadget.n):
                assert dist[gadget.t[j]] == gadget.expected_distance_s_t(i, j)

    def test_cut_width_is_m_plus_one(self):
        x_family, y_family, m = make_families(4, 6, 0, None)
        gadget = build_bc_gadget(x_family, y_family, m)
        crossing = sum(
            1
            for u, v in gadget.graph.edges()
            if (u in gadget.left_side) != (v in gadget.left_side)
        )
        assert crossing == m + 1

    def test_duplicate_y_rejected(self):
        x_family, y_family, m = make_families(3, 6, 0, None)
        dup = [y_family[0], y_family[0], y_family[1]]
        with pytest.raises(LowerBoundParameterError):
            build_bc_gadget(x_family, dup, m)

    @given(st.integers(0, 50))
    @settings(max_examples=12, deadline=None)
    def test_lemma9_random_instances(self, seed):
        x_family, y_family, m = family_pair(3, m=6, seed=seed)
        gadget = build_bc_gadget(x_family, y_family, m)
        bc = brandes_betweenness(gadget.graph, exact=True)
        for i in range(gadget.n):
            assert bc[gadget.f[i]] == gadget.expected_flag_centrality(i)


class TestReduction:
    """Theorem 6 made operational: distributed BC answers disjointness."""

    @pytest.mark.parametrize("intersect", [True, False])
    def test_end_to_end(self, intersect):
        x_family, y_family, m = make_families(3, 6, 4, intersect)
        outcome = solve_disjointness_via_bc(x_family, y_family, m)
        assert outcome.correct
        assert outcome.intersects == intersect
        assert outcome.cut_width == m + 1
        assert outcome.cut_bits > 0

    def test_flag_values_within_0499_relative_error(self):
        """Any 0.499-relative-error BC computation distinguishes 1 vs 1.5."""
        x_family, y_family, m = make_families(3, 6, 5, True)
        outcome = solve_disjointness_via_bc(x_family, y_family, m)
        for value in outcome.flag_values:
            nearest = min((1.0, 1.5), key=lambda t: abs(value - t))
            assert abs(value / nearest - 1.0) < 0.499


class TestBoundFormulas:
    def test_disjointness_bits(self):
        assert disjointness_bits_lower_bound(1024) == 1024 * 10
        assert disjointness_bits_lower_bound(1) == 0.0

    def test_cut_capacity(self):
        assert cut_capacity_per_round(7, 1024) == 70

    def test_information_bound_includes_diameter(self):
        base = information_lower_bound_rounds(64, 7, 100)
        with_d = information_lower_bound_rounds(64, 7, 100, diameter=9)
        assert with_d == base + 9

    def test_theorem_bound(self):
        assert theorem_lower_bound(1024, 10) == 10 + 1024 / 10

    def test_optimality_gap_order_log_n(self):
        # the paper's algorithm runs in c*N rounds; the gap to the lower
        # bound is Theta(log N) up to constants
        import math

        n, d = 1024, 10
        gap = optimality_gap(8 * n, n, d)
        assert gap <= 16 * math.log2(n)
        assert gap >= 1.0


class TestReconstructionNecessity:
    """The prose-only Figure 3 graph does NOT satisfy Lemma 9.

    These tests document *why* the B-F_k and A-P edges were added: on
    the literal prose construction the flag centralities pick up
    spurious pair dependencies and leave the {1, 3/2} dichotomy.
    """

    def test_prose_only_gadget_breaks_lemma9(self):
        x_family, y_family, m = make_families(3, 6, 7, True)
        gadget = build_bc_gadget(
            x_family, y_family, m, reconstruction_edges=False
        )
        bc = brandes_betweenness(gadget.graph, exact=True)
        flag_values = {bc[f] for f in gadget.f}
        assert not flag_values <= {Fraction(1), Fraction(3, 2)}

    def test_spurious_contribution_source_identified(self):
        """Without B-F_k, one of S_i's three shortest paths to F_k runs
        through F_i — the concrete failure mode the docs describe."""
        from repro.centrality.naive import _all_shortest_paths

        x_family, y_family, m = make_families(3, 6, 7, True)
        gadget = build_bc_gadget(
            x_family, y_family, m, reconstruction_edges=False
        )
        s0, f0, f1 = gadget.s[0], gadget.f[0], gadget.f[1]
        paths = _all_shortest_paths(gadget.graph, s0, f1)
        assert any(f0 in path for path in paths)

    def test_reconstructed_gadget_fixes_it(self):
        x_family, y_family, m = make_families(3, 6, 7, True)
        gadget = build_bc_gadget(x_family, y_family, m)
        bc = brandes_betweenness(gadget.graph, exact=True)
        assert {bc[f] for f in gadget.f} <= {Fraction(1), Fraction(3, 2)}
