"""Smoke tests: example scripts run end to end; the public API is sane.

A credible release must keep its README promises: every example script
executes without error, every name re-exported at the package top level
resolves and is documented, and the `__all__` lists stay truthful.
"""

import importlib
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: Fast examples safe to execute inside the test suite (the scaling
#: study, sensor network, error analysis and full report sweep dozens
#: of simulations and stay in the benchmark tier instead).
FAST_EXAMPLES = [
    "quickstart.py",
    "weighted_network.py",
    "protocol_anatomy.py",
    "lower_bound_demo.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_all_examples_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        source = script.read_text(encoding="utf-8")
        assert source.lstrip().startswith('"""'), script.name
        assert '__name__ == "__main__"' in source, script.name


class TestPublicAPI:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.graphs",
            "repro.congest",
            "repro.core",
            "repro.arithmetic",
            "repro.centrality",
            "repro.lowerbound",
            "repro.analysis",
        ],
    )
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), "{}.{} missing".format(
                module_name, name
            )

    def test_top_level_callables_documented(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type(Exception)):
                assert obj.__doc__, "{} lacks a docstring".format(name)

    def test_version(self):
        import repro

        major, *_rest = repro.__version__.split(".")
        assert int(major) >= 1

    def test_cli_module_runnable(self):
        import repro.__main__  # noqa: F401  (import must not execute main)

    def test_no_circular_import_fresh(self):
        """`import repro.core` alone must not explode (fresh interpreter)."""
        import subprocess

        proc = subprocess.run(
            [sys.executable, "-c", "import repro.core"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
