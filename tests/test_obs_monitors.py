"""Invariant monitors under fire: injected violations must be flagged.

The monitors' value rests on actually firing when an invariant breaks,
so these tests are mutation-style: tiny purpose-built protocols inject
exactly the traffic the paper's lemmas forbid — a node sending
aggregation values for two sources in one round (Lemma 4), a message
far beyond the per-edge bit budget (Lemmas 3–5) — and a fabricated
result carries an L-float error outside the Theorem 1 envelope.  Each
monitor must flag its violation in ``record`` mode, warn in ``warn``
mode, and raise in ``raise`` mode; and a clean full-protocol run must
come back with every verdict OK.
"""

from fractions import Fraction
from types import SimpleNamespace

import pytest

from repro.arithmetic.context import make_context
from repro.centrality import brandes_betweenness
from repro.congest import Message, NodeAlgorithm, Simulator
from repro.core import distributed_betweenness
from repro.core.messages import AggValue
from repro.exceptions import InvariantViolationError
from repro.graphs import figure1_graph, karate_club_graph, path_graph
from repro.obs import (
    AggregationCollisionMonitor,
    BandwidthMonitor,
    LFloatErrorMonitor,
    Telemetry,
    default_monitors,
)

_ARITH = make_context("exact", 8)


# ----------------------------------------------------------------------
# injection protocols
# ----------------------------------------------------------------------
class _CollidingAggSender(NodeAlgorithm):
    """Node 0 sends aggregation values for two sources in one round —
    exactly the collision Lemma 4 proves the real schedule avoids."""

    def on_round(self, ctx, inbox):
        if ctx.node_id == 0:
            if ctx.round_number == 1:
                ctx.send(1, AggValue(3, Fraction(1)))
                ctx.send(1, AggValue(4, Fraction(1)))
                self.done = True
        else:
            self.done = True


class _LegalAggSender(NodeAlgorithm):
    """Fan-out of one source's value to two predecessors: legitimate."""

    def on_round(self, ctx, inbox):
        if ctx.node_id == 1:
            if ctx.round_number == 1:
                ctx.send(0, AggValue(3, Fraction(1)))
                ctx.send(2, AggValue(3, Fraction(1)))
                self.done = True
        else:
            self.done = True


class _OversizedMessage(Message):
    """A message an order of magnitude past any O(log N) budget."""

    def payload_bits(self, wire):
        return 100_000


class _OversizedSender(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        if ctx.node_id == 0 and ctx.round_number == 0:
            ctx.send(1, _OversizedMessage())
        self.done = True


def _run_injection(node_class, monitor, strict=False):
    graph = path_graph(3)
    simulator = Simulator(
        graph,
        lambda node_id, neighbors: node_class(node_id, neighbors),
        strict=strict,
        telemetry=Telemetry(monitors=[monitor]),
    )
    simulator.run()
    return monitor


# ----------------------------------------------------------------------
# Lemma 4: aggregation collisions
# ----------------------------------------------------------------------
def test_collision_monitor_flags_duplicate_source_send():
    monitor = _run_injection(
        _CollidingAggSender, AggregationCollisionMonitor()
    )
    verdict = monitor.verdict()
    assert verdict.status == "VIOLATED"
    assert verdict.violation_count == 1
    assert "sources 3 and 4" in verdict.violations[0]
    assert verdict.detail["max_sources_per_node_round"] == 2


def test_collision_monitor_accepts_same_source_fanout():
    monitor = _run_injection(_LegalAggSender, AggregationCollisionMonitor())
    verdict = monitor.verdict()
    assert verdict.status == "OK"
    assert verdict.checked == 1  # one node-round with aggregation sends


def test_collision_monitor_raise_mode_aborts_the_run():
    with pytest.raises(InvariantViolationError) as excinfo:
        _run_injection(
            _CollidingAggSender, AggregationCollisionMonitor("raise")
        )
    assert excinfo.value.monitor == "lemma4_aggregation_collision"


def test_collision_monitor_warn_mode_warns_and_continues():
    with pytest.warns(RuntimeWarning, match="lemma4"):
        monitor = _run_injection(
            _CollidingAggSender, AggregationCollisionMonitor("warn")
        )
    assert monitor.violation_count == 1


# ----------------------------------------------------------------------
# Lemmas 3–5: bandwidth budget
# ----------------------------------------------------------------------
def test_bandwidth_monitor_flags_oversized_message():
    monitor = _run_injection(_OversizedSender, BandwidthMonitor())
    verdict = monitor.verdict()
    assert verdict.status == "VIOLATED"
    assert verdict.detail["max_edge_bits_per_round"] > verdict.detail["budget_bits"]
    assert "budget" in verdict.violations[0]


def test_bandwidth_monitor_raise_mode():
    with pytest.raises(InvariantViolationError):
        _run_injection(_OversizedSender, BandwidthMonitor("raise"))


def test_bandwidth_monitor_custom_budget_stricter_than_simulator():
    # A factor-1 budget is tighter than the simulator's default 32:
    # the protocol's real messages overflow it while the run proceeds.
    telemetry = Telemetry(monitors=[BandwidthMonitor(congest_factor=1)])
    distributed_betweenness(
        figure1_graph(), arithmetic="exact", telemetry=telemetry
    )
    (verdict,) = telemetry.verdicts()
    assert verdict.status == "VIOLATED"
    assert verdict.detail["budget_bits"] < verdict.detail["max_edge_bits_per_round"]


# ----------------------------------------------------------------------
# Theorem 1: L-float error envelope
# ----------------------------------------------------------------------
def _fake_result(graph, scale):
    reference = brandes_betweenness(graph, exact=True)
    return SimpleNamespace(
        graph=graph,
        diameter=3,
        arithmetic="lfloat-8",
        betweenness={v: float(value) * scale for v, value in reference.items()},
    )


def test_lfloat_monitor_flags_error_beyond_envelope():
    monitor = LFloatErrorMonitor()
    monitor.finalize(_fake_result(figure1_graph(), scale=2.0))
    verdict = monitor.verdict()
    assert verdict.status == "VIOLATED"
    assert verdict.detail["max_relative_error"] > verdict.detail["theorem1_bound"]


def test_lfloat_monitor_accepts_exact_values():
    monitor = LFloatErrorMonitor()
    monitor.finalize(_fake_result(figure1_graph(), scale=1.0))
    assert monitor.verdict().status == "OK"


def test_lfloat_monitor_skips_exact_arithmetic_runs():
    telemetry = Telemetry(monitors=[LFloatErrorMonitor()])
    distributed_betweenness(
        figure1_graph(), arithmetic="exact", telemetry=telemetry
    )
    (verdict,) = telemetry.verdicts()
    assert verdict.skipped
    assert verdict.status == "SKIPPED"
    assert verdict.ok


# ----------------------------------------------------------------------
# acceptance: a clean run passes every monitor, even in raise mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["sweep", "event"])
def test_clean_run_passes_all_monitors(engine):
    telemetry = Telemetry(monitors=default_monitors("raise"))
    result = distributed_betweenness(
        karate_club_graph(),
        arithmetic="lfloat",
        engine=engine,
        telemetry=telemetry,
    )
    assert telemetry.all_ok()
    by_name = {v.monitor: v for v in telemetry.verdicts()}
    collision = by_name["lemma4_aggregation_collision"]
    assert collision.status == "OK" and collision.checked > 0
    bandwidth = by_name["bandwidth_budget"]
    assert bandwidth.detail["max_edge_bits_per_round"] <= bandwidth.detail["budget_bits"]
    assert (
        bandwidth.detail["max_edge_bits_per_round"]
        == result.stats.max_edge_bits_per_round
    )
    lfloat = by_name["theorem1_lfloat_error"]
    assert lfloat.status == "OK"
    assert lfloat.detail["max_relative_error"] <= lfloat.detail["theorem1_bound"]
