"""Unit tests for the array-backed :class:`repro.core.records.NodeLedger`.

The ledger's contract is shaped by two consumers: the protocol phases,
which append rows in settle order and read/write the sigma/psi/sent
columns by row index, and the observability layer, which asks for
aggregate storage summaries.  The compat surface (``add``, ``get``,
``__iter__`` over row views) must keep behaving like the old
object-dict ledger bit for bit.
"""

import pickle

import pytest

from repro.core.records import (
    LedgerRow,
    NodeLedger,
    SourceRecord,
    ledger_storage_totals,
)


def build_ledger():
    ledger = NodeLedger(owner=3)
    ledger.add_row(source=0, start_time=4, dist=2, sigma=6, preds=(1, 2))
    ledger.add_row(source=5, start_time=9, dist=1, sigma=1, preds=(5,))
    ledger.add_row(source=3, start_time=7, dist=0, sigma=1, preds=())
    return ledger


class TestRows:
    def test_add_row_returns_dense_indices(self):
        ledger = NodeLedger(owner=0)
        assert ledger.add_row(4, 1, 1, 1, ()) == 0
        assert ledger.add_row(7, 2, 1, 1, ()) == 1
        assert len(ledger) == 2

    def test_duplicate_source_rejected(self):
        ledger = build_ledger()
        with pytest.raises(KeyError):
            ledger.add_row(0, 10, 3, 2, ())

    def test_get_returns_live_view(self):
        ledger = build_ledger()
        row = ledger.get(0)
        assert isinstance(row, LedgerRow)
        assert (row.source, row.start_time, row.dist) == (0, 4, 2)
        assert row.sigma == 6
        assert row.preds == (1, 2)
        assert not row.sent
        row.sent = True
        row.psi = 17
        again = ledger.get(0)
        assert again.sent and again.psi == 17

    def test_get_default_and_contains(self):
        ledger = build_ledger()
        assert ledger.get(99) is None
        assert ledger.get(99, "missing") == "missing"
        assert 5 in ledger and 99 not in ledger

    def test_iteration_yields_every_row(self):
        ledger = build_ledger()
        assert [row.source for row in ledger] == [0, 5, 3]
        assert ledger.sources() == [0, 3, 5]  # sorted by contract

    def test_sending_time_matches_lemma4_formula(self):
        ledger = build_ledger()
        row = ledger.get(0)
        diameter = 3
        assert row.sending_time(diameter) == row.start_time + diameter - row.dist

    def test_detach_produces_plain_record(self):
        ledger = build_ledger()
        ledger.get(5).psi = 11
        record = ledger.get(5).detach()
        assert isinstance(record, SourceRecord)
        assert (record.source, record.start_time, record.dist) == (5, 9, 1)
        assert record.psi == 11
        # Detached copies do not alias the columns.
        record.psi = 99
        assert ledger.get(5).psi == 11

    def test_add_compat_accepts_source_records(self):
        ledger = NodeLedger(owner=1)
        record = SourceRecord(source=2, start_time=3, dist=1, sigma=4, preds=(0,))
        record.psi = 8
        record.sent = True
        ledger.add(record)
        row = ledger.get(2)
        assert row.sigma == 4 and row.psi == 8 and row.sent


class TestColumns:
    def test_row_of_is_the_hot_path_index(self):
        ledger = build_ledger()
        row = ledger.row_of(5)
        assert ledger.source_col[row] == 5
        assert ledger.dist_col[row] == 1
        assert ledger.row_of(99) is None

    def test_preds_stored_as_csr(self):
        ledger = build_ledger()
        assert ledger.preds_at(0) == (1, 2)
        assert ledger.preds_at(1) == (5,)
        assert ledger.preds_at(2) == ()
        assert ledger.predecessor_links() == 3

    def test_aggregate_queries(self):
        ledger = build_ledger()
        assert ledger.eccentricity() == 2
        assert ledger.max_start_time() == 9
        assert ledger.distances() == {0: 2, 5: 1, 3: 0}


class TestStorage:
    def test_storage_summary_counts_words(self):
        ledger = build_ledger()
        summary = ledger.storage_summary()
        assert summary["records"] == 3
        assert summary["pred_links"] == 3
        assert summary["fields"] == 12
        assert summary["words"] == 15

    def test_ledger_storage_totals_sums_across_nodes(self):
        totals = ledger_storage_totals([build_ledger(), build_ledger()])
        assert totals["records"] == 6
        assert totals["words"] == 30

    def test_empty_ledger_summary(self):
        summary = NodeLedger(owner=0).storage_summary()
        assert summary == {
            "records": 0, "pred_links": 0, "fields": 0, "words": 0,
        }


class TestPickle:
    def test_round_trip_preserves_rows_and_index(self):
        ledger = build_ledger()
        ledger.get(0).psi = 13
        clone = pickle.loads(pickle.dumps(ledger))
        assert len(clone) == 3
        assert clone.get(0).psi == 13
        assert clone.preds_at(0) == (1, 2)
        # The rebound row_of works on the clone's own index.
        clone.add_row(8, 12, 4, 2, (0,))
        assert clone.row_of(8) == 3
        assert 8 not in ledger


@pytest.mark.skipif(
    pytest.importorskip("repro.engines").numpy_available() is False,
    reason="bulk engine needs numpy",
)
class TestBulkLedgerLaziness:
    def _bulk_nodes(self):
        from repro.core import distributed_betweenness
        from repro.graphs import path_graph

        result = distributed_betweenness(
            path_graph(6), engine="bulk"
        )
        return result.nodes

    def test_storage_summary_does_not_materialize(self):
        nodes = self._bulk_nodes()
        ledger = nodes[2].ledger
        assert ledger.__dict__.get("_fill") is not None
        summary = ledger.storage_summary()
        # Closed-form answer off the plan arrays; the fill closure
        # must still be pending afterwards.
        assert ledger.__dict__.get("_fill") is not None
        assert summary["records"] == 6

    def test_lazy_summary_matches_materialized_summary(self):
        nodes = self._bulk_nodes()
        for node in nodes:
            lazy = node.ledger.storage_summary()
            node.ledger._materialize()
            assert node.ledger.storage_summary() == lazy

    def test_column_access_triggers_materialization(self):
        nodes = self._bulk_nodes()
        ledger = nodes[1].ledger
        assert ledger.__dict__.get("_fill") is not None
        assert len(ledger.source_col) == 6
        assert ledger.__dict__.get("_fill") is None
