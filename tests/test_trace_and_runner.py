"""Tests for the tracer, the experiment runner, and the two-party framework."""

import pytest

from repro.analysis import ExperimentRunner
from repro.congest import Tracer
from repro.core import distributed_betweenness
from repro.core.messages import AggValue, BfsWave, DfsToken
from repro.graphs import cycle_graph, path_graph
from repro.lowerbound import (
    ExchangeEverythingDisjointness,
    deterministic_disjointness_bound,
    encode_family,
    family_pair,
    simulate_gadget_protocol,
)


class TestTracer:
    def run_traced(self, graph, **kwargs):
        tracer = Tracer(**kwargs)
        result = distributed_betweenness(
            graph, arithmetic="lfloat", tracer=tracer
        )
        return tracer, result

    def test_records_everything_by_default(self, karate):
        tracer, result = self.run_traced(karate)
        assert len(tracer) == result.stats.message_count
        assert sum(s["bits"] for s in tracer.summary().values()) == (
            result.stats.bit_count
        )

    def test_phase_ordering_visible(self, karate):
        """Tree build < BFS waves < done reports < aggregation."""
        tracer, _ = self.run_traced(karate)
        tree_first, tree_last = tracer.rounds_active("TreeWave")
        wave_first, wave_last = tracer.rounds_active("BfsWave")
        agg_first, agg_last = tracer.rounds_active("AggValue")
        start_first, _ = tracer.rounds_active("AggStart")
        assert tree_first == 0
        assert tree_last < wave_first
        assert wave_last < agg_first
        assert start_first < agg_first
        assert agg_last > agg_first

    def test_type_filter(self, karate):
        tracer, _ = self.run_traced(karate, message_types=(DfsToken,))
        assert tracer.message_types() == ["DfsToken"]
        # DFS walks each tree edge twice: 2 * (N - 1) token hops
        assert len(tracer) == 2 * (karate.num_nodes - 1)

    def test_node_filter(self):
        graph = path_graph(6)
        tracer = Tracer(nodes={0})
        distributed_betweenness(graph, arithmetic="exact", tracer=tracer)
        assert all(
            e.sender == 0 or e.receiver == 0 for e in tracer.deliveries()
        )

    def test_max_events_truncation(self, karate):
        tracer, _ = self.run_traced(karate, max_events=100)
        assert len(tracer) == 100
        assert tracer.truncated

    def test_counts_per_round(self):
        graph = cycle_graph(8)
        tracer = Tracer(message_types=(BfsWave,))
        distributed_betweenness(graph, arithmetic="exact", tracer=tracer)
        counts = tracer.counts_per_round("BfsWave")
        # every node broadcasts each wave once: N sources * N nodes * deg 2
        assert sum(counts.values()) == 8 * 8 * 2

    def test_timeline_renders(self, karate):
        tracer, _ = self.run_traced(karate)
        art = tracer.timeline(width=40)
        assert "BfsWave" in art
        assert "AggValue" in art
        assert "rounds 0.." in art

    def test_timeline_empty(self):
        assert "no traced traffic" in Tracer().timeline()

    def test_rounds_active_unknown_type(self, karate):
        tracer, _ = self.run_traced(karate, message_types=(AggValue,))
        assert tracer.rounds_active("TreeWave") == (-1, -1)


class TestExperimentRunner:
    def test_collects_records(self):
        runner = ExperimentRunner(arithmetic="exact")
        records = runner.run_family("path", [path_graph(6), path_graph(10)])
        assert [r.num_nodes for r in records] == [6, 10]
        assert all(r.family == "path" for r in records)
        assert records[0].rounds > 0

    def test_fit_rounds(self):
        runner = ExperimentRunner()
        runner.run_family(
            "cycle", [cycle_graph(n) for n in (8, 16, 24, 32)]
        )
        fit = runner.fit_rounds("cycle")
        assert fit.r_squared > 0.99
        assert 4 < fit.slope < 12

    def test_custom_metrics(self):
        runner = ExperimentRunner(
            arithmetic="exact",
            metrics={"rpn": lambda result: result.rounds / result.graph.num_nodes},
        )
        runner.run_family("path", [path_graph(8)])
        assert "rpn" in runner.records[0].extra

    def test_table_and_families(self):
        runner = ExperimentRunner()
        runner.run_family("a", [path_graph(5)])
        runner.run_family("b", [cycle_graph(5)])
        assert runner.families() == ["a", "b"]
        table = runner.table()
        assert "path-5" in table and "cycle-5" in table
        assert "cycle-5" not in runner.table(family="a")

    def test_csv_export(self, tmp_path):
        runner = ExperimentRunner(arithmetic="exact")
        runner.run_family("path", [path_graph(5)])
        path = tmp_path / "runs.csv"
        text = runner.to_csv(path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0].startswith("family,graph_name,num_nodes")
        assert "path-5" in lines[1]


class TestTwoParty:
    def test_trivial_protocol_answers_correctly(self):
        for intersect in (True, False):
            x, y, m = family_pair(4, m=6, seed=9, force_intersection=intersect)
            protocol = ExchangeEverythingDisjointness(x, y, m)
            answer, bits = protocol.run()
            assert answer == intersect
            assert bits <= protocol.worst_case_bits

    def test_encode_family_ranks_in_range(self):
        import math

        x, _, m = family_pair(5, m=6, seed=1)
        ranks = encode_family(x, m)
        assert all(0 <= r < math.comb(m, m // 2) for r in ranks)
        assert len(set(ranks)) == len(ranks)  # distinct subsets

    def test_theorem4_bound_growth(self):
        small = deterministic_disjointness_bound(8)
        large = deterministic_disjointness_bound(64)
        assert large > small > 0
        # Omega(n log n): at n = 64 the bound exceeds 64 * 6 * 0.5
        assert large > 64 * 6 * 0.5

    def test_bound_degenerate(self):
        assert deterministic_disjointness_bound(0) == 0.0

    def test_gadget_simulation_report(self):
        x, y, m = family_pair(3, m=6, seed=2, force_intersection=True)
        report = simulate_gadget_protocol(x, y, m)
        assert report.outcome.correct
        assert report.simulation_bits > 0
        # the distributed simulation is wildly less communication-
        # efficient than the trivial protocol — the whole point of the
        # lower bound is that it *cannot* be better than Omega(n log n),
        # not that it is good
        assert report.simulation_bits > report.trivial_protocol_bits
        assert report.disjointness_lower_bound_bits > 0

    def test_width_check(self):
        from repro.lowerbound.two_party import _check_width

        with pytest.raises(ValueError):
            _check_width(8, 3)
        _check_width(7, 3)


class TestTraceJson:
    def test_to_json_roundtrip(self):
        import json

        graph = path_graph(4)
        tracer = Tracer()
        result = distributed_betweenness(
            graph, arithmetic="exact", tracer=tracer
        )
        payload = json.loads(tracer.to_json())
        assert payload["schema"] == "repro-trace-v1"
        assert not payload["truncated"]
        assert len(payload["events"]) == result.stats.message_count
        rounds = [e[0] for e in payload["events"]]
        assert rounds == sorted(rounds)
        assert all(len(e) == 5 for e in payload["events"])
