"""Tests for the naive BC oracles and the other centrality indices."""

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.centrality import (
    brandes_betweenness,
    closeness_centrality,
    enumerate_betweenness,
    graph_centrality,
    naive_betweenness,
    stress_centrality,
)
from repro.exceptions import GraphNotConnectedError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    karate_club_graph,
    path_graph,
    star_graph,
)
from repro.graphs.convert import to_networkx

from .conftest import arbitrary_graphs, connected_graphs


class TestNaiveBetweenness:
    @given(arbitrary_graphs(max_nodes=10))
    @settings(max_examples=25, deadline=None)
    def test_matches_brandes_exactly(self, graph):
        assert naive_betweenness(graph) == brandes_betweenness(
            graph, exact=True
        )

    def test_normalized(self):
        g = star_graph(5)
        bc = naive_betweenness(g, normalized=True)
        assert bc[0] == 1
        bc_tiny = naive_betweenness(Graph(2, [(0, 1)]), normalized=True)
        assert bc_tiny == {0: 0, 1: 0}

    def test_figure1(self):
        assert naive_betweenness(figure1_graph())[1] == Fraction(7, 2)


class TestEnumerationOracle:
    @given(connected_graphs(max_nodes=7))
    @settings(max_examples=15, deadline=None)
    def test_matches_brandes_exactly(self, graph):
        assert enumerate_betweenness(graph) == brandes_betweenness(
            graph, exact=True
        )

    def test_diamond(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        bc = enumerate_betweenness(g)
        assert bc[1] == Fraction(1, 2)
        assert bc[2] == Fraction(1, 2)


class TestCloseness:
    @given(connected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx_up_to_convention(self, graph):
        # networkx closeness multiplies by (N - 1); Eq. (1) does not.
        mine = closeness_centrality(graph)
        theirs = nx.closeness_centrality(to_networkx(graph))
        n = graph.num_nodes
        for v in graph.nodes():
            assert mine[v] * (n - 1) == pytest.approx(theirs[v])

    def test_exact_mode(self):
        cc = closeness_centrality(path_graph(3), exact=True)
        assert cc[1] == Fraction(1, 2)
        assert cc[0] == Fraction(1, 3)

    def test_disconnected_raises(self):
        with pytest.raises(GraphNotConnectedError):
            closeness_centrality(Graph(2))

    def test_single_node(self):
        assert closeness_centrality(Graph(1)) == {0: 0.0}


class TestGraphCentrality:
    def test_star(self):
        cg = graph_centrality(star_graph(5), exact=True)
        assert cg[0] == Fraction(1)
        assert cg[1] == Fraction(1, 2)

    def test_path(self):
        cg = graph_centrality(path_graph(5))
        assert cg[2] == pytest.approx(1 / 2)
        assert cg[0] == pytest.approx(1 / 4)

    def test_disconnected_raises(self):
        with pytest.raises(GraphNotConnectedError):
            graph_centrality(Graph(3, [(0, 1)]))

    def test_single_node(self):
        assert graph_centrality(Graph(1)) == {0: 0.0}


class TestStress:
    def test_path(self):
        # interior node of P4: paths 0-1-2, 0-1-2-3, (1-2-3 for node 2)
        stress = stress_centrality(path_graph(4))
        assert stress == {0: 0, 1: 2, 2: 2, 3: 0}

    def test_star(self):
        stress = stress_centrality(star_graph(5))
        assert stress[0] == 6  # C(4, 2) leaf pairs
        assert stress[1] == 0

    def test_complete_zero(self):
        assert all(
            v == 0 for v in stress_centrality(complete_graph(5)).values()
        )

    def test_cycle(self):
        # C5 has five distance-2 pairs, each with one interior node, so
        # every node is interior to exactly one shortest path.
        stress = stress_centrality(cycle_graph(5))
        assert set(stress.values()) == {1}

    @given(arbitrary_graphs(max_nodes=9))
    @settings(max_examples=20, deadline=None)
    def test_stress_equals_brute_force(self, graph):
        """CS(v) = number of shortest paths with v interior (Eq. 3)."""
        from repro.centrality.naive import _all_shortest_paths

        expected = {v: 0 for v in graph.nodes()}
        for s in graph.nodes():
            for t in graph.nodes():
                if s >= t:
                    continue
                for path in _all_shortest_paths(graph, s, t):
                    for v in path[1:-1]:
                        expected[v] += 1
        assert stress_centrality(graph) == expected

    def test_stress_bc_relation_on_unique_path_graphs(self):
        """On trees sigma == 1 everywhere, so stress == betweenness."""
        from repro.graphs import random_tree

        g = random_tree(15, seed=2)
        stress = stress_centrality(g)
        bc = brandes_betweenness(g, exact=True)
        assert all(stress[v] == bc[v] for v in g.nodes())

    def test_karate_against_networkx_generic(self):
        """Cross-check stress via networkx path enumeration on karate."""
        g = karate_club_graph()
        nxg = to_networkx(g)
        expected = {v: 0 for v in g.nodes()}
        for s in g.nodes():
            for t in g.nodes():
                if s >= t:
                    continue
                for path in nx.all_shortest_paths(nxg, s, t):
                    for v in path[1:-1]:
                        expected[v] += 1
        assert stress_centrality(g) == expected
