"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.graphs import (
    connected_erdos_renyi_graph,
    erdos_renyi_graph,
    figure1_graph,
    karate_club_graph,
)


@pytest.fixture
def figure1():
    """The paper's 5-node worked example (v1..v5 = nodes 0..4)."""
    return figure1_graph()


@pytest.fixture
def karate():
    """Zachary's karate club graph."""
    return karate_club_graph()


@st.composite
def connected_graphs(draw, min_nodes: int = 2, max_nodes: int = 14):
    """A seeded random connected graph (reproducible via our generators)."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    density = draw(st.sampled_from([0.15, 0.3, 0.5, 0.8]))
    return connected_erdos_renyi_graph(n, density, seed=seed)


@st.composite
def arbitrary_graphs(draw, min_nodes: int = 1, max_nodes: int = 14):
    """A seeded random graph that may be disconnected."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    density = draw(st.sampled_from([0.0, 0.1, 0.3, 0.6]))
    return erdos_renyi_graph(n, density, seed=seed)
