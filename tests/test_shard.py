"""Sharded multi-process runtime: partitioners, bit-identity, faults.

The shard engine partitions the node set across worker processes and
exchanges only cross-shard frames per round, but every billed quantity
still flows through the exact wire codec — so these tests demand
*identity* with the single-process event engine, not approximation:
betweenness values, rounds, bits, messages, worst edge, per-round
series, fault counters, and the stall/partial surfaces all byte-equal.
"""

import pytest

from repro.core import distributed_betweenness
from repro.exceptions import EngineCapabilityError
from repro.faults import CrashWindow, FaultPlan
from repro.graphs import (
    balanced_tree,
    connected_erdos_renyi_graph,
    cycle_graph,
    figure1_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    star_graph,
)
from repro.shard import edge_cut, partition_nodes

ZOO = [
    figure1_graph(),
    path_graph(9),
    cycle_graph(10),
    star_graph(8),
    balanced_tree(2, 3),
    lollipop_graph(5, 4),
    connected_erdos_renyi_graph(14, 0.25, seed=1),
]

WORKER_COUNTS = (1, 2, 3, 5)


def _fingerprint(result):
    """Every observable of a protocol run, in comparable form."""
    return {
        "betweenness": sorted(result.betweenness.items()),
        "diameter": result.diameter,
        "rounds": result.rounds,
        "start_times": sorted(result.start_times.items()),
        "summary": result.stats.summary(),
        "round_series": result.stats.round_series,
        "worst_edge": result.stats.worst_edge,
    }


# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    @pytest.mark.parametrize("graph", ZOO, ids=lambda g: g.name)
    @pytest.mark.parametrize("kind", ["block", "greedy"])
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_disjoint_cover(self, graph, kind, workers):
        assignment, shards = partition_nodes(graph, workers, kind=kind)
        assert len(assignment) == graph.num_nodes
        seen = set()
        for members in shards:
            assert members, "no empty shards"
            assert seen.isdisjoint(members)
            seen.update(members)
        assert seen == set(range(graph.num_nodes))
        for node, shard in enumerate(assignment):
            assert node in shards[shard]

    @pytest.mark.parametrize("kind", ["block", "greedy"])
    def test_root_lands_in_shard_zero(self, kind):
        graph = cycle_graph(12)
        for root in (0, 5, 11):
            _, shards = partition_nodes(graph, 3, kind=kind, root=root)
            assert root in shards[0]

    def test_workers_clamped_to_node_count(self):
        graph = figure1_graph()  # N=5
        assignment, shards = partition_nodes(graph, 99, kind="block")
        assert len(shards) == graph.num_nodes
        assert sorted(map(len, shards)) == [1] * graph.num_nodes

    @pytest.mark.parametrize(
        "graph", [cycle_graph(16), grid_graph(4, 4)], ids=lambda g: g.name
    )
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_greedy_cuts_no_more_than_block(self, graph, workers):
        """Greedy grows shards along BFS frontiers, so on locality-rich
        topologies it must not cut more edges than blind id-slicing."""
        block = edge_cut(graph, partition_nodes(graph, workers, "block")[0])
        greedy = edge_cut(graph, partition_nodes(graph, workers, "greedy")[0])
        assert greedy <= block

    def test_edge_cut_counts_cross_shard_edges(self):
        graph = path_graph(6)
        assignment, _ = partition_nodes(graph, 2, kind="block")
        # Contiguous halves of a path share exactly one edge.
        assert edge_cut(graph, assignment) == 1


# ----------------------------------------------------------------------
# bit-identity against the event engine
# ----------------------------------------------------------------------
class TestShardIdentity:
    @pytest.mark.parametrize("graph", ZOO, ids=lambda g: g.name)
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("protocol", ["hua-bc", "cfp-bc"])
    def test_matrix_identical_to_event(self, graph, workers, protocol):
        reference = _fingerprint(
            distributed_betweenness(
                graph, arithmetic="lfloat", engine="event", protocol=protocol
            )
        )
        sharded = _fingerprint(
            distributed_betweenness(
                graph,
                arithmetic="lfloat",
                engine="shard",
                workers=workers,
                protocol=protocol,
            )
        )
        assert sharded == reference

    @pytest.mark.parametrize("kind", ["block", "greedy"])
    @pytest.mark.parametrize("arithmetic", ["exact", "lfloat"])
    def test_partitioner_and_arithmetic_invariance(self, kind, arithmetic):
        graph = connected_erdos_renyi_graph(16, 0.2, seed=2)
        reference = _fingerprint(
            distributed_betweenness(
                graph, arithmetic=arithmetic, engine="event"
            )
        )
        sharded = _fingerprint(
            distributed_betweenness(
                graph,
                arithmetic=arithmetic,
                engine="shard",
                workers=3,
                partitioner=kind,
            )
        )
        assert sharded == reference

    def test_single_worker_shard_is_the_event_engine(self):
        graph = figure1_graph()
        reference = _fingerprint(
            distributed_betweenness(graph, engine="event")
        )
        sharded = distributed_betweenness(graph, engine="shard", workers=1)
        assert _fingerprint(sharded) == reference
        assert sharded.stats.engine == "shard"
        assert sharded.stats.shard["workers"] == 1
        assert sharded.stats.shard["cross_bits"] == 0

    def test_shard_summary_accounts_for_the_cut(self):
        graph = cycle_graph(10)
        result = distributed_betweenness(graph, engine="shard", workers=2)
        shard = result.stats.shard
        assert shard["edge_cut"] == edge_cut(
            graph, partition_nodes(graph, 2, "greedy")[0]
        )
        assert 0 < shard["cross_bits"] <= result.stats.bit_count
        assert 0 < shard["cross_messages"] <= result.stats.message_count
        assert sum(e["nodes"] for e in shard["per_shard"]) == graph.num_nodes


# ----------------------------------------------------------------------
# faults: recovery, chaos, and whole-worker kills
# ----------------------------------------------------------------------
class TestShardFaults:
    def test_resilient_recovery_matches_clean_run(self):
        graph = cycle_graph(10)
        plan = FaultPlan(seed=1, crashes=(CrashWindow(4, 10, 30),))
        clean = distributed_betweenness(graph, arithmetic="exact")
        recovered = distributed_betweenness(
            graph,
            arithmetic="exact",
            engine="shard",
            workers=3,
            faults=plan,
            resilient=True,
        )
        assert recovered.completeness.complete
        assert recovered.betweenness == clean.betweenness
        assert recovered.stats.faults.as_dict()["recoveries"] == 1

    def test_channel_faults_identical_to_event(self):
        graph = connected_erdos_renyi_graph(12, 0.3, seed=4)
        plan = FaultPlan(seed=7, drop_rate=0.05, duplicate_rate=0.05)

        def run(engine, workers=1):
            return distributed_betweenness(
                graph,
                arithmetic="lfloat",
                engine=engine,
                workers=workers,
                faults=plan,
                resilient=True,
            )

        reference, sharded = run("event"), run("shard", workers=2)
        assert _fingerprint(sharded) == _fingerprint(reference)
        assert (
            sharded.stats.faults.as_dict()
            == reference.stats.faults.as_dict()
        )

    def test_kill_whole_worker_completeness_parity(self):
        """Permanently crashing every node of one shard kills the worker
        process outright; the coordinator must absorb its final state
        and report the same partial result as the event engine."""
        graph = path_graph(8)
        # block/W=4 puts {4, 5} alone in shard 2; crash both for good.
        plan = FaultPlan(
            seed=3,
            crashes=(CrashWindow(4, 6, None), CrashWindow(5, 6, None)),
        )

        def run(engine, **kwargs):
            return distributed_betweenness(
                graph,
                arithmetic="lfloat",
                engine=engine,
                faults=plan,
                resilient=True,
                **kwargs,
            )

        reference = run("event")
        sharded = run("shard", workers=4, partitioner="block")
        ref_report, shard_report = (
            reference.completeness, sharded.completeness
        )
        assert not shard_report.complete
        assert shard_report.crashed_nodes == ref_report.crashed_nodes
        assert shard_report.stalled_round == ref_report.stalled_round
        assert (
            shard_report.complete_sources == ref_report.complete_sources
        )
        assert (
            shard_report.affected_sources == ref_report.affected_sources
        )
        assert sharded.betweenness == reference.betweenness
        assert (
            sharded.stats.faults.as_dict() == reference.stats.faults.as_dict()
        )


# ----------------------------------------------------------------------
# capability envelope
# ----------------------------------------------------------------------
class TestShardEnvelope:
    def test_auto_never_resolves_to_shard(self):
        result = distributed_betweenness(
            figure1_graph(), engine="auto", workers=4
        )
        assert result.stats.engine != "shard"

    def test_tracer_rejected(self):
        from repro.congest import Tracer

        with pytest.raises(EngineCapabilityError, match="tracer"):
            distributed_betweenness(
                figure1_graph(),
                engine="shard",
                workers=2,
                tracer=Tracer(),
            )

    def test_send_monitor_rejected(self):
        from repro.obs import Telemetry
        from repro.obs.monitors import WireExactnessMonitor

        with pytest.raises(EngineCapabilityError, match="send-level"):
            distributed_betweenness(
                figure1_graph(),
                engine="shard",
                workers=2,
                telemetry=Telemetry(monitors=[WireExactnessMonitor()]),
            )

    def test_counting_only_runs_rejected(self):
        from repro.core import distributed_apsp

        with pytest.raises(EngineCapabilityError, match="ledger"):
            distributed_apsp(figure1_graph(), engine="shard", workers=2)

    def test_foreign_node_algorithms_rejected(self):
        from repro.congest import NodeAlgorithm, Simulator

        class Silent(NodeAlgorithm):
            def on_round(self, round_number, inbox):
                self.done = True
                return []

        with pytest.raises(EngineCapabilityError, match="BetweennessNode"):
            Simulator(
                figure1_graph(), lambda v, g: Silent(v, g), engine="shard"
            ).run()

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            distributed_betweenness(
                figure1_graph(), engine="shard", workers=0
            )
        with pytest.raises(ValueError, match="partitioner"):
            distributed_betweenness(
                figure1_graph(), engine="shard", workers=2, partitioner="metis"
            )


# ----------------------------------------------------------------------
# observability and history threading
# ----------------------------------------------------------------------
class TestShardObservability:
    def test_telemetry_shard_gauges(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        result = distributed_betweenness(
            cycle_graph(8), engine="shard", workers=2, telemetry=telemetry
        )
        snap = telemetry.registry.snapshot()
        assert snap["shard.workers"]["value"] == 2
        assert (
            snap["shard.cross_bits"]["value"]
            == result.stats.shard["cross_bits"]
        )
        assert snap["shard.0.nodes"]["value"] + snap["shard.1.nodes"][
            "value"
        ] == 8

    def test_history_key_is_worker_invariant(self):
        from repro.obs.history import entry_from_result

        graph = figure1_graph()
        one = distributed_betweenness(graph, engine="shard", workers=1)
        four = distributed_betweenness(graph, engine="shard", workers=4)
        entry_one = entry_from_result(one, graph)
        entry_four = entry_from_result(four, graph)
        assert entry_one["workers"] == 1
        assert entry_four["workers"] == 4
        assert entry_one["key"] == entry_four["key"]
        # ... and the metrics under that shared key agree, which is the
        # point of keeping W out of the content address.
        for metric in ("rounds", "bits", "messages"):
            assert entry_one[metric] == entry_four[metric]
        event = distributed_betweenness(graph, engine="event")
        assert entry_from_result(event, graph)["workers"] == 1

    def test_bench_shard_ingest_and_gates(self, tmp_path):
        from repro.obs.history import (
            HistoryLedger,
            RegressionGates,
            compare_payloads,
        )

        payload = {
            "benchmark": "shard_runtime",
            "arithmetic": "lfloat",
            "rows": [
                {
                    "family": "cycle",
                    "n": 10,
                    "protocol": "hua-bc",
                    "workers": 2,
                    "partitioner": "greedy",
                    "rounds": 74,
                    "bits": 6821,
                    "messages": 240,
                    "identical_results": True,
                    "edge_cut": 2,
                    "cross_bits": 500,
                    "shard_seconds": 0.5,
                }
            ],
        }
        ledger = HistoryLedger(tmp_path / "ledger.jsonl")
        assert ledger.ingest_bench_shard(payload) == 1
        ok, _ = compare_payloads(payload, payload)
        assert ok == []
        broken = {
            "benchmark": "shard_runtime",
            "rows": [
                dict(
                    payload["rows"][0],
                    bits=9999,
                    identical_results=False,
                    shard_seconds=5.0,
                )
            ],
        }
        violations, compared = compare_payloads(payload, broken)
        assert compared == 1
        gate_names = {v.gate for v in violations}
        assert {"bits", "identity"} <= gate_names
        hard = [v for v in violations if v.hard]
        assert {v.gate for v in hard} == {"bits", "identity"}
        # wall gates are soft and vanish under check_wall=False
        no_wall, _ = compare_payloads(
            payload, broken, RegressionGates(check_wall=False)
        )
        assert all(v.hard for v in no_wall)


class TestRunManyInteraction:
    def test_pool_forces_single_worker_shards(self):
        import warnings

        from repro.analysis import run_many

        graphs = [figure1_graph(), cycle_graph(8)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            records = run_many(
                graphs, engine="shard", workers=2, processes=2
            )
        assert any(
            "oversubscribe" in str(w.message) for w in caught
        )
        reference = run_many(graphs, engine="event", processes=1)
        assert [
            (r.rounds, r.bits, r.messages) for r in records
        ] == [(r.rounds, r.bits, r.messages) for r in reference]

    def test_serial_grid_keeps_shard_fanout(self):
        import warnings

        from repro.analysis import run_many

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            records = run_many(
                [cycle_graph(8)], engine="shard", workers=2, processes=1
            )
        assert not any(
            "oversubscribe" in str(w.message) for w in caught
        )
        assert records[0].rounds == 74
