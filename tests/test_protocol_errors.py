"""Fault injection: every ProtocolError guard, triggered deliberately.

The protocol asserts its own invariants (Lemma 4 collision-freedom,
synchrony of predecessor waves, tree-phase ordering) instead of
trusting them.  These tests drive the phase handlers directly with
adversarial message sequences and verify each guard fires — so a future
refactoring that silently weakens an invariant check fails loudly.
"""

import pytest

from repro.arithmetic import ExactContext
from repro.congest.node import RoundContext
from repro.core.aggregation import AggregationPhase
from repro.core.counting import CountingPhase
from repro.core.messages import (
    AggStart,
    AggValue,
    Announce,
    BfsWave,
    DfsToken,
    TreeWave,
)
from repro.core.records import NodeLedger, SourceRecord
from repro.core.tree import TreePhase
from repro.exceptions import ProtocolError

ARITH = ExactContext()


def ctx_for(node_id=0, round_number=0, neighbors=(1, 2, 3)):
    return RoundContext(node_id, round_number, tuple(neighbors))


def make_counting(node_id=0, is_root=False, parent=1):
    tree = TreePhase(node_id, is_root=is_root)
    tree.parent = None if is_root else parent
    tree.dist = 0 if is_root else 1
    tree.settle_round = 0
    ledger = NodeLedger(node_id)
    return CountingPhase(node_id, tree, ledger, ARITH), tree, ledger


def make_aggregation(node_id=0):
    tree = TreePhase(node_id, is_root=False)
    tree.parent = 1
    ledger = NodeLedger(node_id)
    return AggregationPhase(node_id, tree, ledger, ARITH), tree, ledger


class TestTreePhaseGuards:
    def test_inconsistent_wave_depths(self):
        tree = TreePhase(5, is_root=False)
        with pytest.raises(ProtocolError, match="depths"):
            tree.on_round(
                ctx_for(5),
                waves=[(1, TreeWave(0)), (2, TreeWave(3))],
                joins=[],
                counts=[],
                announces=[],
            )

    def test_duplicate_announce(self):
        tree = TreePhase(5, is_root=False)
        tree.parent = 1
        tree.children_final = True
        tree.on_round(
            ctx_for(5), waves=[], joins=[], counts=[],
            announces=[(1, Announce(9))],
        )
        with pytest.raises(ProtocolError, match="duplicate"):
            tree.on_round(
                ctx_for(5, 1), waves=[], joins=[], counts=[],
                announces=[(1, Announce(9))],
            )

    def test_announce_before_children_final(self):
        tree = TreePhase(5, is_root=False)
        with pytest.raises(ProtocolError, match="children"):
            tree.on_round(
                ctx_for(5), waves=[], joins=[], counts=[],
                announces=[(1, Announce(9))],
            )


class TestCountingGuards:
    def test_two_sources_settle_same_round(self):
        counting, _tree, _ledger = make_counting()
        waves = [
            (1, BfsWave(7, 3, 0, 1)),
            (2, BfsWave(8, 4, 0, 1)),
        ]
        with pytest.raises(ProtocolError, match="Lemma 4"):
            counting.on_round(ctx_for(), waves, [], [])

    def test_late_predecessor_wave(self):
        counting, _tree, ledger = make_counting()
        ledger.add(SourceRecord(7, 3, dist=2, sigma=1, preds=(1,)))
        late = [(2, BfsWave(7, 3, 1, 1))]  # dist+1 == record.dist
        with pytest.raises(ProtocolError, match="late wave"):
            counting.on_round(ctx_for(), late, [], [])

    def test_inconsistent_fresh_waves(self):
        counting, _tree, _ledger = make_counting()
        waves = [
            (1, BfsWave(7, 3, 2, 1)),
            (2, BfsWave(7, 3, 5, 1)),  # different claimed dist
        ]
        with pytest.raises(ProtocolError, match="inconsistent"):
            counting.on_round(ctx_for(), waves, [], [])

    def test_echo_waves_ignored(self):
        """Same-level or downstream echoes must NOT raise."""
        counting, _tree, ledger = make_counting()
        ledger.add(SourceRecord(7, 3, dist=2, sigma=1, preds=(1,)))
        echo = [(2, BfsWave(7, 3, 2, 1))]  # same level: dist+1 > 2
        counting.on_round(ctx_for(), echo, [], [])  # no error
        assert len(ledger) == 1

    def test_two_tokens_at_once(self):
        counting, _tree, _ledger = make_counting()
        tokens = [(1, DfsToken()), (2, DfsToken())]
        with pytest.raises(ProtocolError, match="two DFS tokens"):
            counting.on_round(ctx_for(), [], tokens, [])

    def test_first_token_from_non_parent(self):
        counting, _tree, _ledger = make_counting(parent=1)
        with pytest.raises(ProtocolError, match="tree parent"):
            counting.on_round(ctx_for(), [], [(2, DfsToken())], [])

    def test_token_from_parent_accepted(self):
        counting, _tree, _ledger = make_counting(parent=1)
        counting.on_round(ctx_for(), [], [(1, DfsToken())], [])
        assert counting.visited


class TestAggregationGuards:
    def test_duplicate_agg_start(self):
        agg, _tree, _ledger = make_aggregation()
        agg.arm(AggStart(3, 10, 20))
        with pytest.raises(ProtocolError, match="twice"):
            agg.arm(AggStart(3, 10, 20))

    def test_lemma4_schedule_collision_detected(self):
        agg, _tree, ledger = make_aggregation(node_id=0)
        # two sources engineered onto the same send round:
        # T_s + D - d equal: (10, d=1) and (11, d=2) with D = 3.
        ledger.add(SourceRecord(5, 10, dist=1, sigma=1, preds=(1,)))
        ledger.add(SourceRecord(6, 11, dist=2, sigma=1, preds=(1,)))
        with pytest.raises(ProtocolError, match="Lemma 4"):
            agg.arm(AggStart(3, 11, 100))

    def test_value_before_arming(self):
        agg, _tree, _ledger = make_aggregation()
        values = [(1, AggValue(5, ARITH.psi_zero()))]
        with pytest.raises(ProtocolError, match="before AggStart"):
            agg.on_round(ctx_for(), values)

    def test_value_for_unknown_source(self):
        agg, _tree, ledger = make_aggregation()
        ledger.add(SourceRecord(0, 10, dist=0, sigma=1, preds=()))
        agg.arm(AggStart(3, 10, 20))
        values = [(1, AggValue(99, ARITH.psi_zero()))]
        with pytest.raises(ProtocolError, match="unknown source"):
            agg.on_round(ctx_for(), values)

    def test_silent_round_before_arming_ok(self):
        agg, _tree, _ledger = make_aggregation()
        agg.on_round(ctx_for(), [])  # nothing armed, nothing received
        assert not agg.finished


class TestLedgerGuards:
    def test_duplicate_source_record(self):
        ledger = NodeLedger(0)
        ledger.add(SourceRecord(3, 1, 1, 1, (1,)))
        with pytest.raises(KeyError):
            ledger.add(SourceRecord(3, 2, 2, 1, (2,)))

    def test_unknown_message_type_rejected_by_node(self):
        from repro.congest.message import IntMessage
        from repro.core.node import _split_inbox

        with pytest.raises(ProtocolError, match="unexpected message"):
            _split_inbox([(1, IntMessage(4))])


class TestPipelineGuards:
    def test_betweenness_raw_before_finish(self):
        from repro.core.node import BetweennessNode

        node = BetweennessNode(0, (1,), root=0, arith=ARITH)
        with pytest.raises(ProtocolError, match="not finished"):
            _ = node.betweenness_raw
