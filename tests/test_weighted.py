"""Tests for weighted graphs, subdivision, and weighted betweenness."""

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.centrality import brandes_betweenness, weighted_brandes_betweenness
from repro.core import distributed_weighted_betweenness
from repro.exceptions import (
    GraphNotConnectedError,
    InvalidEdgeError,
    UnknownNodeError,
)
from repro.graphs import (
    WeightedGraph,
    dijkstra,
    is_weighted_connected,
    shortest_path_counts,
    subdivide,
    weighted_diameter,
)
from repro.graphs.properties import bfs_distances


@st.composite
def weighted_graphs(draw, min_nodes=2, max_nodes=8, max_weight=4):
    """A connected random weighted graph (spanning tree + extra edges)."""
    import random

    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    edges = {}
    for v in range(1, n):
        u = rng.randrange(v)
        edges[(u, v)] = rng.randint(1, max_weight)
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            key = (min(a, b), max(a, b))
            edges.setdefault(key, rng.randint(1, max_weight))
    return WeightedGraph(n, [(u, v, w) for (u, v), w in edges.items()])


class TestWeightedGraphType:
    def test_basic(self):
        g = WeightedGraph(3, [(0, 1, 2), (1, 2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.total_weight() == 5
        assert g.neighbors(1) == ((0, 2), (2, 3))

    def test_rejects_bad_edges(self):
        with pytest.raises(InvalidEdgeError):
            WeightedGraph(2, [(0, 0, 1)])
        with pytest.raises(InvalidEdgeError):
            WeightedGraph(2, [(0, 1, 0)])
        with pytest.raises(InvalidEdgeError):
            WeightedGraph(2, [(0, 1, 1), (1, 0, 2)])
        with pytest.raises(InvalidEdgeError):
            WeightedGraph(2, [(0, 3, 1)])

    def test_unknown_node(self):
        with pytest.raises(UnknownNodeError):
            WeightedGraph(2, [(0, 1, 1)]).neighbors(5)

    def test_connectivity(self):
        assert is_weighted_connected(WeightedGraph(2, [(0, 1, 3)]))
        assert not is_weighted_connected(WeightedGraph(3, [(0, 1, 1)]))
        assert is_weighted_connected(WeightedGraph(0))


class TestDijkstra:
    def test_simple(self):
        g = WeightedGraph(4, [(0, 1, 2), (1, 2, 2), (0, 2, 5), (2, 3, 1)])
        dist, sigma = dijkstra(g, 0)
        assert dist == [0, 2, 4, 5]
        # two shortest 0->2 paths? 0-1-2 = 4, 0-2 = 5: just one
        assert sigma[2] == 1

    def test_tied_paths_counted(self):
        g = WeightedGraph(4, [(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)])
        _dist, sigma = dijkstra(g, 0)
        assert sigma[3] == 2

    def test_unreachable(self):
        g = WeightedGraph(3, [(0, 1, 2)])
        dist, sigma = dijkstra(g, 0)
        assert dist[2] == -1
        assert sigma[2] == 0

    @given(weighted_graphs())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, graph):
        nxg = nx.Graph()
        nxg.add_nodes_from(graph.nodes())
        for u, v, w in graph.edges():
            nxg.add_edge(u, v, weight=w)
        expected = nx.single_source_dijkstra_path_length(nxg, 0)
        dist, _ = dijkstra(graph, 0)
        for v in graph.nodes():
            assert dist[v] == expected[v]

    def test_weighted_diameter(self):
        g = WeightedGraph(3, [(0, 1, 2), (1, 2, 3)])
        assert weighted_diameter(g) == 5
        with pytest.raises(GraphNotConnectedError):
            weighted_diameter(WeightedGraph(3, [(0, 1, 1)]))


class TestSubdivision:
    def test_node_and_edge_counts(self):
        g = WeightedGraph(3, [(0, 1, 3), (1, 2, 1)])
        sub = subdivide(g)
        assert sub.graph.num_nodes == 3 + 2  # weight-3 edge adds 2 virtuals
        assert sub.graph.num_edges == g.total_weight()
        assert sub.num_virtual == 2
        assert sub.is_real(0) and not sub.is_real(3)

    def test_chain_recorded(self):
        g = WeightedGraph(2, [(0, 1, 4)])
        sub = subdivide(g)
        chain = sub.edge_chains[(0, 1)]
        assert len(chain) == 3
        assert sub.graph.has_edge(0, chain[0])
        assert sub.graph.has_edge(chain[-1], 1)

    @given(weighted_graphs())
    @settings(max_examples=30, deadline=None)
    def test_preserves_real_distances_and_counts(self, graph):
        sub = subdivide(graph)
        for s in graph.nodes():
            wdist, wsigma = dijkstra(graph, s)
            udist = bfs_distances(sub.graph, s)
            usigma = shortest_path_counts(sub.graph, s)
            for v in graph.nodes():
                assert udist[v] == wdist[v]
                assert usigma[v] == wsigma[v]


class TestWeightedBrandes:
    def test_unit_weights_match_unweighted(self):
        from repro.graphs import karate_club_graph

        club = karate_club_graph()
        weighted = WeightedGraph(
            club.num_nodes, [(u, v, 1) for u, v in club.edges()]
        )
        assert weighted_brandes_betweenness(
            weighted, exact=True
        ) == brandes_betweenness(club, exact=True)

    @given(weighted_graphs())
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx(self, graph):
        nxg = nx.Graph()
        nxg.add_nodes_from(graph.nodes())
        for u, v, w in graph.edges():
            nxg.add_edge(u, v, weight=w)
        theirs = nx.betweenness_centrality(
            nxg, normalized=False, weight="weight"
        )
        mine = weighted_brandes_betweenness(graph)
        for v in graph.nodes():
            assert mine[v] == pytest.approx(theirs[v], abs=1e-9)

    def test_normalized(self):
        g = WeightedGraph(3, [(0, 1, 2), (1, 2, 2)])
        bc = weighted_brandes_betweenness(g, normalized=True, exact=True)
        assert bc[1] == Fraction(1)

    def test_weights_change_routing(self):
        # heavy direct edge: traffic reroutes through the middle node
        g = WeightedGraph(3, [(0, 2, 10), (0, 1, 1), (1, 2, 1)])
        bc = weighted_brandes_betweenness(g, exact=True)
        assert bc[1] == 1


class TestDistributedWeighted:
    @given(weighted_graphs(max_nodes=6, max_weight=3))
    @settings(max_examples=12, deadline=None)
    def test_matches_weighted_brandes_exactly(self, graph):
        result = distributed_weighted_betweenness(graph, arithmetic="exact")
        assert result.betweenness_exact == weighted_brandes_betweenness(
            graph, exact=True
        )

    def test_virtual_nodes_hidden_from_output(self):
        g = WeightedGraph(3, [(0, 1, 3), (1, 2, 2)])
        result = distributed_weighted_betweenness(g)
        assert set(result.betweenness) == set(g.nodes())
        assert result.subdivision.num_virtual == 3

    def test_disconnected_rejected(self):
        with pytest.raises(GraphNotConnectedError):
            distributed_weighted_betweenness(WeightedGraph(3, [(0, 1, 2)]))

    def test_lfloat_mode(self):
        g = WeightedGraph(4, [(0, 1, 2), (1, 2, 2), (2, 3, 2), (0, 3, 3)])
        result = distributed_weighted_betweenness(g, arithmetic="lfloat")
        reference = weighted_brandes_betweenness(g)
        for v in g.nodes():
            if reference[v]:
                assert result.betweenness[v] == pytest.approx(
                    reference[v], rel=1e-2
                )

    def test_rounds_scale_with_total_weight(self):
        light = WeightedGraph(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        heavy = WeightedGraph(4, [(0, 1, 5), (1, 2, 5), (2, 3, 5)])
        fast = distributed_weighted_betweenness(light)
        slow = distributed_weighted_betweenness(heavy)
        assert slow.rounds > fast.rounds
        assert slow.subdivision.graph.num_nodes == 4 + 3 * 4
