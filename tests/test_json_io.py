"""Tests for the JSON graph serialization."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    WeightedGraph,
    dumps_json,
    karate_club_graph,
    loads_json,
    read_json,
    write_json,
)


class TestJsonRoundtrip:
    def test_unweighted(self):
        g = karate_club_graph()
        assert loads_json(dumps_json(g)) == g

    def test_name_preserved(self):
        g = Graph(3, [(0, 1)], name="tiny")
        assert loads_json(dumps_json(g)).name == "tiny"

    def test_isolated_nodes_preserved(self):
        g = Graph(5, [(0, 1)])
        assert loads_json(dumps_json(g)).num_nodes == 5

    def test_weighted(self):
        wg = WeightedGraph(4, [(0, 1, 3), (1, 2, 1), (2, 3, 7)], name="w")
        restored = loads_json(dumps_json(wg))
        assert isinstance(restored, WeightedGraph)
        assert restored.edges() == wg.edges()
        assert restored.name == "w"

    def test_file_roundtrip(self, tmp_path):
        g = Graph(4, [(0, 1), (2, 3)])
        path = tmp_path / "g.json"
        write_json(g, path)
        assert read_json(path) == g

    def test_weighted_file_roundtrip(self, tmp_path):
        wg = WeightedGraph(2, [(0, 1, 9)])
        path = tmp_path / "wg.json"
        write_json(wg, path)
        assert read_json(path).edges() == wg.edges()


class TestJsonErrors:
    def test_invalid_json(self):
        with pytest.raises(GraphError):
            loads_json("{not json")

    def test_missing_fields(self):
        with pytest.raises(GraphError):
            loads_json('{"name": "x"}')

    def test_wrong_shape(self):
        with pytest.raises(GraphError):
            loads_json("[1, 2, 3]")
