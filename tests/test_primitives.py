"""Tests for the reusable CONGEST primitives (BFS tree, convergecast,
leader election) and the root-election pipeline integration."""

import pytest
from hypothesis import given, settings

from repro.centrality import brandes_betweenness
from repro.congest import (
    LeaderElectionNode,
    Simulator,
    elect_root,
    make_bfs_tree_factory,
    make_convergecast_factory,
    run_protocol,
)
from repro.core import distributed_betweenness
from repro.graphs import (
    Graph,
    bfs_distances,
    complete_graph,
    cycle_graph,
    eccentricity,
    grid_graph,
    karate_club_graph,
    path_graph,
    star_graph,
)

from .conftest import connected_graphs


class TestBfsTreePrimitive:
    @pytest.mark.parametrize("root", [0, 5, 33])
    def test_depths_and_census(self, root):
        graph = karate_club_graph()
        nodes, stats = run_protocol(graph, make_bfs_tree_factory(root))
        dist = bfs_distances(graph, root)
        for node in nodes:
            assert node.depth == dist[node.node_id]
        assert nodes[root].census == graph.num_nodes
        assert stats.rounds <= 3 * eccentricity(graph, root) + 6

    def test_parent_child_consistency(self):
        graph = grid_graph(4, 4)
        nodes, _ = run_protocol(graph, make_bfs_tree_factory(0))
        for node in nodes:
            for child in node.children:
                assert nodes[child].parent == node.node_id
        # the tree spans: N - 1 parent pointers
        assert sum(1 for n in nodes if n.parent is not None) == 15

    def test_single_node(self):
        nodes, _ = run_protocol(Graph(1), make_bfs_tree_factory(0))
        assert nodes[0].census == 1
        assert nodes[0].depth == 0


class TestConvergecastPrimitive:
    def test_max_over_tree(self):
        graph = path_graph(6)
        tree_nodes, _ = run_protocol(graph, make_bfs_tree_factory(0))
        parents = {n.node_id: n.parent for n in tree_nodes}
        children = {n.node_id: n.children for n in tree_nodes}
        values = {v: (v * 7) % 13 for v in graph.nodes()}
        nodes, stats = run_protocol(
            graph, make_convergecast_factory(parents, children, values)
        )
        assert nodes[0].result == max(values.values())
        assert stats.rounds <= graph.num_nodes + 2


class TestLeaderElection:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(9), cycle_graph(8), star_graph(7), complete_graph(6),
         grid_graph(3, 4), karate_club_graph()],
        ids=lambda g: g.name,
    )
    def test_min_id_wins(self, graph):
        leader, rounds = elect_root(graph)
        assert leader == 0
        # O(D) rounds with a small constant
        from repro.graphs import diameter

        assert rounds <= 5 * diameter(graph) + 8

    @given(connected_graphs(min_nodes=2, max_nodes=10))
    @settings(max_examples=15, deadline=None)
    def test_all_nodes_agree(self, graph):
        nodes, _ = run_protocol(graph, LeaderElectionNode)
        leaders = {node.leader for node in nodes}
        assert leaders == {0}

    def test_seeded_election_varies_and_agrees(self):
        graph = karate_club_graph()
        leaders = set()
        for seed in range(8):
            leader, _ = elect_root(graph, seed=seed)
            assert graph.has_node(leader)
            leaders.add(leader)
        assert len(leaders) >= 3  # pseudo-random spread

    def test_seeded_election_deterministic(self):
        graph = grid_graph(3, 3)
        assert elect_root(graph, seed=5) == elect_root(graph, seed=5)

    def test_single_node_elects_itself(self):
        leader, _ = elect_root(Graph(1))
        assert leader == 0

    def test_two_nodes(self):
        leader, _ = elect_root(Graph(2, [(0, 1)]))
        assert leader == 0

    def test_messages_stay_small(self):
        graph = karate_club_graph()
        sim = Simulator(graph, LeaderElectionNode)
        sim.run()
        assert sim.stats.max_edge_bits_per_round <= sim.bit_budget


class TestRootElectionPipeline:
    def test_root_none_elects_and_computes(self):
        graph = karate_club_graph()
        result = distributed_betweenness(graph, arithmetic="exact", root=None)
        assert result.root == 0  # min-id election
        assert result.betweenness_exact == brandes_betweenness(
            graph, exact=True
        )

    def test_root_none_on_path(self):
        graph = path_graph(8)
        result = distributed_betweenness(graph, root=None)
        assert result.root == 0
        assert result.diameter == 7


class TestGenericConvergecastAndBroadcast:
    def _tree(self, graph, root=0):
        from repro.congest import make_bfs_tree_factory

        nodes, _ = run_protocol(graph, make_bfs_tree_factory(root))
        parents = {n.node_id: n.parent for n in nodes}
        children = {n.node_id: n.children for n in nodes}
        return parents, children

    def test_sum_reduction(self):
        import operator

        from repro.congest import make_convergecast_factory

        graph = grid_graph(3, 3)
        parents, children = self._tree(graph)
        values = {v: v + 1 for v in graph.nodes()}
        nodes, _ = run_protocol(
            graph,
            make_convergecast_factory(
                parents, children, values, combine=operator.add
            ),
        )
        assert nodes[0].result == sum(values.values())

    def test_min_reduction(self):
        from repro.congest import make_convergecast_factory

        graph = cycle_graph(7)
        parents, children = self._tree(graph)
        values = {v: (v * 5) % 11 for v in graph.nodes()}
        nodes, _ = run_protocol(
            graph, make_convergecast_factory(parents, children, values, min)
        )
        assert nodes[0].result == min(values.values())

    def test_broadcast_reaches_all(self):
        from repro.congest import make_broadcast_factory
        from repro.graphs import eccentricity

        graph = karate_club_graph()
        _parents, children = self._tree(graph)
        nodes, stats = run_protocol(
            graph, make_broadcast_factory(children, root=0, value=424242)
        )
        assert all(n.received == 424242 for n in nodes)
        assert stats.rounds <= eccentricity(graph, 0) + 3
