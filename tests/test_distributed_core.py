"""End-to-end tests of the distributed algorithm (Algorithms 2 + 3).

The central correctness statement: with exact arithmetic the distributed
protocol reproduces Brandes' output *exactly* (as rationals) on every
connected graph, while satisfying the CONGEST model's per-edge bandwidth
limit on every round; with L-float arithmetic the relative error obeys
the Theorem 1 / Corollary 1 envelope.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.arithmetic import recommended_precision, theorem1_bound
from repro.centrality import brandes_betweenness
from repro.core import distributed_betweenness
from repro.exceptions import GraphNotConnectedError
from repro.graphs import (
    Graph,
    balanced_tree,
    les_miserables_graph,
    barbell_graph,
    complete_graph,
    connected_erdos_renyi_graph,
    cycle_graph,
    diameter,
    diamond_chain_graph,
    figure1_graph,
    grid_graph,
    hypercube_graph,
    karate_club_graph,
    lollipop_graph,
    path_graph,
    shortest_path_counts,
    star_graph,
    watts_strogatz_graph,
)

from .conftest import connected_graphs

FAMILIES = [
    figure1_graph(),
    path_graph(9),
    cycle_graph(10),
    star_graph(9),
    complete_graph(8),
    grid_graph(4, 5),
    balanced_tree(2, 3),
    lollipop_graph(5, 4),
    barbell_graph(4, 3),
    hypercube_graph(3),
    diamond_chain_graph(5),
    karate_club_graph(),
    watts_strogatz_graph(16, 4, 0.3, seed=5),
    connected_erdos_renyi_graph(18, 0.2, seed=11),
    les_miserables_graph()[0],
]


@pytest.mark.parametrize("graph", FAMILIES, ids=lambda g: g.name)
class TestExactCorrectness:
    def test_matches_brandes_exactly(self, graph):
        result = distributed_betweenness(graph, arithmetic="exact")
        reference = brandes_betweenness(graph, exact=True)
        assert result.betweenness_exact == reference

    def test_diameter_learned_correctly(self, graph):
        result = distributed_betweenness(graph, arithmetic="exact")
        assert result.diameter == diameter(graph)

    def test_congest_budget_respected_with_lfloat(self, graph):
        result = distributed_betweenness(graph, arithmetic="lfloat")
        wire_bits = max(1, math.ceil(math.log2(graph.num_nodes)))
        assert result.stats.max_edge_bits_per_round <= 32 * wire_bits

    def test_rounds_linear_in_n(self, graph):
        result = distributed_betweenness(graph, arithmetic="lfloat")
        # Theorem 3 with a generous implementation constant: the tree
        # preamble, DFS walk, counting and aggregation phases are each
        # O(N), and small graphs carry O(1) additive slack.
        assert result.rounds <= 14 * graph.num_nodes + 40


class TestHypothesisExactness:
    @given(connected_graphs(max_nodes=12))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_exact(self, graph):
        result = distributed_betweenness(graph, arithmetic="exact")
        assert result.betweenness_exact == brandes_betweenness(
            graph, exact=True
        )


class TestLFloatAccuracy:
    @pytest.mark.parametrize("graph", FAMILIES, ids=lambda g: g.name)
    def test_error_within_theorem1_envelope(self, graph):
        precision = recommended_precision(graph.num_nodes)
        result = distributed_betweenness(graph, arithmetic="lfloat")
        reference = brandes_betweenness(graph, exact=True)
        bound = theorem1_bound(precision, graph.num_nodes, result.diameter)
        for v in graph.nodes():
            exact = reference[v]
            if exact == 0:
                assert result.betweenness[v] == pytest.approx(0.0, abs=1e-12)
            else:
                err = abs(result.betweenness[v] / float(exact) - 1.0)
                assert err <= bound

    def test_higher_precision_reduces_error(self):
        graph = karate_club_graph()
        reference = brandes_betweenness(graph, exact=True)

        def max_err(precision):
            result = distributed_betweenness(
                graph, arithmetic="lfloat-{}".format(precision)
            )
            return max(
                abs(result.betweenness[v] / float(reference[v]) - 1.0)
                for v in graph.nodes()
                if reference[v] != 0
            )

        assert max_err(24) < max_err(10)

    def test_exponential_sigma_handled(self):
        """Diamond chains have sigma = 2^k; L-floats keep messages small."""
        graph = diamond_chain_graph(12)
        assert max(shortest_path_counts(graph, 0)) == 2**12
        result = distributed_betweenness(graph, arithmetic="lfloat")
        reference = brandes_betweenness(graph, exact=True)
        for v in graph.nodes():
            if reference[v]:
                err = abs(result.betweenness[v] / float(reference[v]) - 1.0)
                assert err < 1e-3


class TestProtocolInternals:
    def test_start_times_satisfy_separation(self):
        """Lemma 4's prerequisite: T_t >= T_s + d(s, t) + 1."""
        from repro.core import verify_separation

        for graph in (karate_club_graph(), grid_graph(4, 4), path_graph(8)):
            result = distributed_betweenness(graph, arithmetic="exact")
            assert verify_separation(graph, result.start_times)

    def test_start_times_match_tree_walk_schedule(self):
        """The simulator's DFS timing equals the analytic tree walk."""
        from repro.core import bfs_start_times

        graph = karate_club_graph()
        result = distributed_betweenness(graph, arithmetic="exact")
        analytic = bfs_start_times(graph, root=0, mode="tree_walk")
        offset = result.start_times[0]
        for v in graph.nodes():
            assert result.start_times[v] == analytic[v] + offset

    def test_ledgers_record_correct_sigma_and_distance(self):
        from repro.graphs import bfs_distances

        graph = grid_graph(3, 4)
        result = distributed_betweenness(graph, arithmetic="exact")
        for node in result.nodes:
            for record in node.ledger:
                dist = bfs_distances(graph, record.source)
                sigma = shortest_path_counts(graph, record.source)
                assert record.dist == dist[node.node_id]
                assert record.sigma == sigma[node.node_id]

    def test_ledger_predecessors_match(self):
        from repro.graphs import predecessor_sets

        graph = karate_club_graph()
        result = distributed_betweenness(graph, arithmetic="exact")
        for node in result.nodes[:8]:
            for record in node.ledger:
                expected = predecessor_sets(graph, record.source)
                assert record.preds == expected[node.node_id]

    def test_dependencies_match_brandes_recursion(self):
        from repro.centrality import (
            accumulate_dependencies,
            single_source_shortest_paths,
        )

        graph = figure1_graph()
        result = distributed_betweenness(graph, arithmetic="exact")
        for s in graph.nodes():
            delta = accumulate_dependencies(
                single_source_shortest_paths(graph, s), exact=True
            )
            for v in graph.nodes():
                if v == s:
                    continue
                assert result.dependency(s, v) == delta[v]

    def test_figure1_walkthrough_values(self):
        """delta_{v1.}(v2) = 3 and CB(v2) = 7/2, as in Section VII."""
        result = distributed_betweenness(figure1_graph(), arithmetic="exact")
        assert result.dependency(0, 1) == Fraction(3)
        assert result.betweenness_exact[1] == Fraction(7, 2)

    def test_at_most_one_fresh_wave_per_round(self):
        """Lemma 4's effect: <= 1 BFS/aggregation message per edge-round.

        max_edge_messages_per_round stays at a small constant (wave +
        token + control may share an edge, never two waves).
        """
        result = distributed_betweenness(
            karate_club_graph(), arithmetic="exact"
        )
        assert result.stats.max_edge_messages_per_round <= 3


class TestAPIBehaviour:
    def test_root_choice_does_not_change_values(self):
        graph = karate_club_graph()
        base = distributed_betweenness(graph, arithmetic="exact", root=0)
        other = distributed_betweenness(graph, arithmetic="exact", root=17)
        assert base.betweenness_exact == other.betweenness_exact
        assert base.diameter == other.diameter

    def test_disconnected_rejected(self):
        with pytest.raises(GraphNotConnectedError):
            distributed_betweenness(Graph(4, [(0, 1), (2, 3)]))

    def test_unknown_root(self):
        with pytest.raises(KeyError):
            distributed_betweenness(path_graph(3), root=9)

    def test_single_node_graph(self):
        result = distributed_betweenness(Graph(1), arithmetic="exact")
        assert result.betweenness_exact == {0: Fraction(0)}
        assert result.diameter == 0

    def test_two_node_graph(self):
        result = distributed_betweenness(Graph(2, [(0, 1)]), arithmetic="exact")
        assert result.betweenness_exact == {0: 0, 1: 0}
        assert result.diameter == 1

    def test_normalized_output(self):
        graph = star_graph(6)
        result = distributed_betweenness(graph, arithmetic="exact")
        normalized = result.normalized()
        assert normalized[0] == pytest.approx(1.0)

    def test_distances_method(self):
        from repro.graphs import bfs_distances

        graph = path_graph(5)
        result = distributed_betweenness(graph, arithmetic="exact")
        table = result.distances()
        for v in graph.nodes():
            dist = bfs_distances(graph, v)
            for s in graph.nodes():
                assert table[v][s] == dist[s]

    def test_result_repr_fields(self):
        result = distributed_betweenness(path_graph(3), arithmetic="exact")
        assert result.arithmetic == "exact"
        assert result.root == 0
        assert result.rounds == result.stats.rounds


class TestSpaceProfile:
    def test_ledger_space_bounds(self):
        """Per-node state is O(N * (1 + deg)): the distributed footprint."""
        graph = karate_club_graph()
        result = distributed_betweenness(graph, arithmetic="exact")
        n = graph.num_nodes
        total_links = 0
        for node in result.nodes:
            summary = node.ledger.storage_summary()
            assert summary["records"] == n
            assert summary["pred_links"] <= n * graph.degree(node.node_id)
            assert summary["words"] == summary["fields"] + summary["pred_links"]
            total_links += summary["pred_links"]
        # network-wide predecessor storage equals the number of
        # (source, edge-on-a-shortest-path) incidences <= 2 M N
        assert total_links <= 2 * graph.num_edges * n

    def test_predecessor_links_match_structure(self):
        from repro.graphs import predecessor_sets

        graph = grid_graph(3, 4)
        result = distributed_betweenness(graph, arithmetic="exact")
        for node in result.nodes:
            expected = sum(
                len(predecessor_sets(graph, s)[node.node_id])
                for s in graph.nodes()
            )
            assert node.ledger.predecessor_links() == expected
