"""Tests for the arithmetic contexts and the error-bound formulas."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic import (
    ExactContext,
    LFloat,
    LFloatArithmetic,
    compound_bound,
    corollary1_error,
    error_profile,
    lemma1_bound,
    make_context,
    max_relative_error,
    recommended_precision,
    relative_error,
    theorem1_bound,
)


class TestExactContext:
    def setup_method(self):
        self.ctx = ExactContext()

    def test_sigma_ops(self):
        assert self.ctx.sigma_one() == 1
        assert self.ctx.sigma_add(2, 3) == 5

    def test_psi_ops(self):
        assert self.ctx.psi_zero() == 0
        assert self.ctx.psi_add(Fraction(1, 2), Fraction(1, 3)) == Fraction(5, 6)

    def test_reciprocal(self):
        assert self.ctx.reciprocal(4) == Fraction(1, 4)

    def test_dependency(self):
        assert self.ctx.dependency(Fraction(3, 2), 4) == 6

    def test_value_bits_grow_with_magnitude(self):
        # Self-delimiting varint widths (Elias delta of value + 1):
        # still Theta(magnitude bits), which is what the Large Value
        # Challenge rides on.
        assert self.ctx.value_bits(1) == 4
        assert self.ctx.value_bits(2**100) == 113
        assert self.ctx.value_bits(Fraction(3, 8)) == 5 + 8

    def test_to_float(self):
        assert self.ctx.to_float(Fraction(1, 2)) == 0.5

    def test_to_exact(self):
        assert self.ctx.to_exact(7) == 7


class TestLFloatArithmetic:
    def setup_method(self):
        self.ctx = LFloatArithmetic(12)

    def test_sigma_one(self):
        assert self.ctx.sigma_one().to_fraction() == 1

    def test_sigma_add_ceil_overestimates(self):
        x = LFloat.from_int(4097, 12)
        total = self.ctx.sigma_add(x, x)
        assert total.to_fraction() >= 2 * x.to_fraction()

    def test_psi_add_floor_underestimates(self):
        third_ish = self.ctx.reciprocal(LFloat.from_int(3, 12))
        total = self.ctx.psi_add(third_ish, third_ish)
        assert total.to_fraction() <= Fraction(2, 3)

    def test_reciprocal_below_exact(self):
        f = LFloat.from_int(3, 12)
        assert self.ctx.reciprocal(f).to_fraction() <= Fraction(1, 3)

    def test_dependency_product(self):
        psi = LFloat.from_int(3, 12)
        sigma = LFloat.from_int(2, 12)
        assert self.ctx.dependency(psi, sigma).to_fraction() == 6

    def test_value_bits_constant(self):
        small = self.ctx.sigma_one()
        huge = LFloat.from_int(2**900, 12)
        assert self.ctx.value_bits(small) == self.ctx.value_bits(huge) == 25

    def test_name(self):
        assert self.ctx.name == "lfloat-12"

    @given(st.lists(st.integers(1, 10**9), min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_sigma_chain_one_sided(self, values):
        """Accumulated sigma stays >= the exact sum (inequality 17's basis)."""
        from repro.arithmetic import Rounding

        ctx = LFloatArithmetic(16)
        acc = LFloat.from_int(values[0], 16, Rounding.CEIL)
        for v in values[1:]:
            acc = ctx.sigma_add(acc, LFloat.from_int(v, 16, Rounding.CEIL))
        assert acc.to_fraction() >= sum(values)


class TestMakeContext:
    def test_exact(self):
        assert isinstance(make_context("exact"), ExactContext)

    def test_lfloat_auto(self):
        ctx = make_context("lfloat", num_nodes=256)
        assert isinstance(ctx, LFloatArithmetic)
        assert ctx.precision == recommended_precision(256)

    def test_lfloat_explicit(self):
        assert make_context("lfloat-20").precision == 20

    def test_passthrough(self):
        ctx = ExactContext()
        assert make_context(ctx) is ctx

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_context("decimal")

    def test_recommended_precision_floor(self):
        assert recommended_precision(2) == 8
        assert recommended_precision(1024) == 30

    def test_recommended_precision_needs_node(self):
        with pytest.raises(ValueError):
            recommended_precision(0)


class TestErrorBounds:
    def test_lemma1(self):
        assert lemma1_bound(11) == 2**-10

    def test_compound_grows(self):
        assert compound_bound(16, 0) == 0
        assert compound_bound(16, 10) > compound_bound(16, 5)

    def test_compound_approximates_linear(self):
        bound = compound_bound(24, 100)
        assert bound == pytest.approx(100 * 2**-23, rel=1e-3)

    def test_theorem1_bound_positive(self):
        assert theorem1_bound(20, 50, 10) > 0

    def test_corollary1_scaling(self):
        assert corollary1_error(100, 3.0) == pytest.approx(0.01)
        assert corollary1_error(1, 3.0) == 0.0

    def test_relative_error(self):
        assert relative_error(1.1, Fraction(1)) == pytest.approx(0.1)
        assert relative_error(0.0, Fraction(0)) == 0.0
        assert math.isinf(relative_error(1.0, Fraction(0)))

    def test_max_relative_error(self):
        measured = {0: 1.0, 1: 2.2}
        exact = {0: Fraction(1), 1: Fraction(2)}
        assert max_relative_error(measured, exact) == pytest.approx(0.1)

    def test_error_profile(self):
        measured = {0: 1.0, 1: 2.2, 2: 0.0}
        exact = {0: Fraction(1), 1: Fraction(2), 2: Fraction(0)}
        profile = error_profile(measured, exact)
        assert profile["count"] == 2
        assert profile["max"] == pytest.approx(0.1)
        assert profile["mean"] == pytest.approx(0.05)

    def test_error_profile_empty(self):
        assert error_profile({}, {})["count"] == 0
