"""Tests for the centralized Brandes baseline (Algorithm 1)."""

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.centrality import (
    accumulate_dependencies,
    accumulate_psi,
    brandes_betweenness,
    dependency_matrix,
    pair_dependencies,
    single_node_betweenness,
    single_source_shortest_paths,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    karate_club_graph,
    lollipop_graph,
    path_graph,
    star_graph,
)
from repro.graphs.convert import to_networkx

from .conftest import arbitrary_graphs, connected_graphs


class TestKnownValues:
    def test_path_graph(self):
        bc = brandes_betweenness(path_graph(5), exact=True)
        # interior of P5: node 1 bridges {0}x{2,3,4}, node 2 {0,1}x{3,4}
        assert bc == {
            0: 0,
            1: Fraction(3),
            2: Fraction(4),
            3: Fraction(3),
            4: 0,
        }

    def test_star_center(self):
        bc = brandes_betweenness(star_graph(6), exact=True)
        assert bc[0] == Fraction(5 * 4, 2)
        assert all(bc[v] == 0 for v in range(1, 6))

    def test_cycle_symmetry(self):
        bc = brandes_betweenness(cycle_graph(7), exact=True)
        assert len(set(bc.values())) == 1

    def test_complete_graph_zero(self):
        bc = brandes_betweenness(complete_graph(6), exact=True)
        assert all(value == 0 for value in bc.values())

    def test_figure1_paper_values(self):
        """CB(v2) = 7/2 as worked out at the end of Section VII."""
        bc = brandes_betweenness(figure1_graph(), exact=True)
        assert bc[1] == Fraction(7, 2)
        assert bc[0] == 0

    def test_figure1_dependency_walkthrough(self):
        """delta_{v1.}(v2) = 3 per the paper's Eq. (14) walkthrough."""
        deps = dependency_matrix(figure1_graph(), exact=True)
        assert deps[0][1] == Fraction(3)
        # CB(v2) = (delta_v1(v2) + delta_v3(v2) + delta_v4(v2) +
        #           delta_v5(v2)) / 2 = 7/2
        total = deps[0][1] + deps[2][1] + deps[3][1] + deps[4][1]
        assert total / 2 == Fraction(7, 2)

    def test_lollipop_junction_dominates(self):
        g = lollipop_graph(5, 4)
        bc = brandes_betweenness(g, exact=True)
        junction = 4  # last clique node, where the tail attaches
        assert bc[junction] == max(bc.values())


class TestAgainstNetworkx:
    @given(arbitrary_graphs())
    @settings(max_examples=40, deadline=None)
    def test_unnormalized_matches(self, graph):
        mine = brandes_betweenness(graph)
        theirs = nx.betweenness_centrality(to_networkx(graph), normalized=False)
        for v in graph.nodes():
            assert mine[v] == pytest.approx(theirs[v], abs=1e-9)

    @given(connected_graphs(min_nodes=3))
    @settings(max_examples=30, deadline=None)
    def test_normalized_matches(self, graph):
        mine = brandes_betweenness(graph, normalized=True)
        theirs = nx.betweenness_centrality(to_networkx(graph), normalized=True)
        for v in graph.nodes():
            assert mine[v] == pytest.approx(theirs[v], abs=1e-9)

    def test_karate_club_spot_values(self):
        mine = brandes_betweenness(karate_club_graph())
        theirs = nx.betweenness_centrality(
            to_networkx(karate_club_graph()), normalized=False
        )
        for v in (0, 33, 2, 31):
            assert mine[v] == pytest.approx(theirs[v])


class TestConventionsAndEdgeCases:
    def test_exact_mode_returns_fractions(self):
        bc = brandes_betweenness(path_graph(4), exact=True)
        assert all(isinstance(v, Fraction) for v in bc.values())

    def test_float_mode_returns_floats(self):
        bc = brandes_betweenness(path_graph(4))
        assert all(isinstance(v, float) for v in bc.values())

    def test_tiny_graphs(self):
        assert brandes_betweenness(Graph(1)) == {0: 0.0}
        assert brandes_betweenness(Graph(2, [(0, 1)])) == {0: 0.0, 1: 0.0}

    def test_normalized_tiny_graph_zero(self):
        bc = brandes_betweenness(Graph(2, [(0, 1)]), normalized=True)
        assert bc == {0: 0.0, 1: 0.0}

    def test_disconnected_ok(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        bc = brandes_betweenness(g, exact=True)
        assert bc[1] == 1
        assert bc[4] == 1

    def test_single_node_helper(self):
        assert single_node_betweenness(path_graph(3), 1) == 1


class TestSSSPInternals:
    def test_sssp_result_fields(self):
        g = figure1_graph()
        result = single_source_shortest_paths(g, 0)
        assert result.dist == [0, 1, 2, 3, 2]
        assert result.sigma == [1, 1, 1, 2, 1]
        assert result.preds[3] == [2, 4]
        assert result.order[0] == 0
        # order is sorted by distance
        dists = [result.dist[v] for v in result.order]
        assert dists == sorted(dists)

    def test_accumulate_exact_vs_float(self):
        g = karate_club_graph()
        result = single_source_shortest_paths(g, 0)
        exact = accumulate_dependencies(result, exact=True)
        approx = accumulate_dependencies(result, exact=False)
        for a, b in zip(exact, approx):
            assert float(a) == pytest.approx(b, abs=1e-9)

    def test_psi_is_delta_over_sigma(self):
        """Eq. (14): psi_s(v) = delta_s(v) / sigma_sv."""
        g = figure1_graph()
        result = single_source_shortest_paths(g, 0)
        delta = accumulate_dependencies(result, exact=True)
        psi = accumulate_psi(result, exact=True)
        for v in g.nodes():
            if v == 0:
                continue
            assert psi[v] == Fraction(delta[v]) / result.sigma[v]

    def test_psi_figure1_walkthrough(self):
        """psi_{v1}(v5) = psi_{v1}(v3) = 1/2 (Section VII example)."""
        result = single_source_shortest_paths(figure1_graph(), 0)
        psi = accumulate_psi(result, exact=True)
        assert psi[4] == Fraction(1, 2)
        assert psi[2] == Fraction(1, 2)

    def test_pair_dependencies_sum_to_dependency(self):
        """delta_s(v) = sum_t delta_st(v) (Eq. 8)."""
        g = figure1_graph()
        pairs = pair_dependencies(g, 0)
        delta = accumulate_dependencies(
            single_source_shortest_paths(g, 0), exact=True
        )
        for v in g.nodes():
            if v == 0:
                continue
            total = sum(
                value for (t, node), value in pairs.items() if node == v
            )
            assert total == delta[v]
