"""Metamorphic properties: identities that must hold on *every* graph.

These tests don't compare against an oracle implementation — they
compare the algorithms against *themselves* under transformations with
known effects.  They catch bug classes oracles can miss (e.g. an oracle
and the implementation sharing a convention error):

* **relabeling equivariance**: permuting node ids permutes every
  centrality (distributed run included — the protocol must not depend
  on id order beyond tie-breaking);
* **the pendant-leaf identity**: attaching a new leaf ℓ to node v adds
  exactly δ_{v·}(u) to CB(u) for every u ≠ v, and (N−1) to CB(v) —
  because every new pair (ℓ, t) routes ℓ → v → t, contributing the same
  fractions as pairs (v, t) do, plus v itself on all of them;
* **edge-doubling via subdivision**: subdividing every edge once scales
  all distances by 2 and preserves real-pair path counts;
* **component additivity**: BC of a disjoint union is the per-component
  BC.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.centrality import (
    accumulate_dependencies,
    brandes_betweenness,
    single_source_shortest_paths,
    stress_centrality,
)
from repro.core import distributed_betweenness
from repro.exceptions import InvalidEdgeError
from repro.graphs import (
    Graph,
    WeightedGraph,
    bfs_distances,
    karate_club_graph,
    path_graph,
    shortest_path_counts,
    subdivide,
)

from .conftest import arbitrary_graphs, connected_graphs


@st.composite
def graph_with_permutation(draw, max_nodes=10):
    graph = draw(connected_graphs(max_nodes=max_nodes))
    permutation = draw(st.permutations(range(graph.num_nodes)))
    return graph, list(permutation)


class TestRelabelingEquivariance:
    @given(graph_with_permutation())
    @settings(max_examples=20, deadline=None)
    def test_brandes_commutes(self, data):
        graph, perm = data
        relabelled = graph.relabel(perm)
        original = brandes_betweenness(graph, exact=True)
        shuffled = brandes_betweenness(relabelled, exact=True)
        for v in graph.nodes():
            assert shuffled[perm[v]] == original[v]

    @given(graph_with_permutation(max_nodes=8))
    @settings(max_examples=10, deadline=None)
    def test_distributed_commutes(self, data):
        graph, perm = data
        relabelled = graph.relabel(perm)
        original = distributed_betweenness(graph, arithmetic="exact")
        shuffled = distributed_betweenness(relabelled, arithmetic="exact")
        for v in graph.nodes():
            assert (
                shuffled.betweenness_exact[perm[v]]
                == original.betweenness_exact[v]
            )

    @given(graph_with_permutation())
    @settings(max_examples=15, deadline=None)
    def test_stress_commutes(self, data):
        graph, perm = data
        original = stress_centrality(graph)
        shuffled = stress_centrality(graph.relabel(perm))
        for v in graph.nodes():
            assert shuffled[perm[v]] == original[v]

    def test_relabel_validates(self):
        with pytest.raises(InvalidEdgeError):
            path_graph(3).relabel([0, 0, 1])
        with pytest.raises(InvalidEdgeError):
            path_graph(3).relabel([0, 1])

    def test_relabel_identity(self):
        g = karate_club_graph()
        assert g.relabel(list(g.nodes())) == g


class TestPendantLeafIdentity:
    @given(connected_graphs(max_nodes=10), st.integers(0, 1_000_000))
    @settings(max_examples=20, deadline=None)
    def test_leaf_attachment_shifts_bc_by_dependency(self, graph, v_seed):
        v = v_seed % graph.num_nodes
        n = graph.num_nodes
        extended = Graph(
            n + 1, list(graph.edges()) + [(v, n)], name="pendant"
        )
        before = brandes_betweenness(graph, exact=True)
        after = brandes_betweenness(extended, exact=True)
        delta = accumulate_dependencies(
            single_source_shortest_paths(graph, v), exact=True
        )
        for u in graph.nodes():
            if u == v:
                assert after[u] == before[u] + (n - 1)
            else:
                assert after[u] == before[u] + delta[u]
        assert after[n] == 0  # the new leaf is never interior

    def test_leaf_identity_distributed(self):
        graph = karate_club_graph()
        v = 2
        extended = Graph(
            35, list(graph.edges()) + [(v, 34)], name="karate-pendant"
        )
        before = distributed_betweenness(graph, arithmetic="exact")
        after = distributed_betweenness(extended, arithmetic="exact")
        assert (
            after.betweenness_exact[v]
            == before.betweenness_exact[v] + graph.num_nodes - 1
        )
        for u in graph.nodes():
            if u != v:
                expected = before.betweenness_exact[u] + Fraction(
                    before.dependency(v, u)
                )
                assert after.betweenness_exact[u] == expected


class TestSubdivisionScaling:
    @given(connected_graphs(max_nodes=9))
    @settings(max_examples=15, deadline=None)
    def test_uniform_weight2_doubles_distances(self, graph):
        weighted = WeightedGraph(
            graph.num_nodes, [(u, v, 2) for u, v in graph.edges()]
        )
        sub = subdivide(weighted)
        for s in range(min(3, graph.num_nodes)):
            base = bfs_distances(graph, s)
            doubled = bfs_distances(sub.graph, s)
            counts = shortest_path_counts(graph, s)
            sub_counts = shortest_path_counts(sub.graph, s)
            for v in graph.nodes():
                assert doubled[v] == 2 * base[v]
                assert sub_counts[v] == counts[v]


class TestComponentAdditivity:
    @given(arbitrary_graphs(max_nodes=8), arbitrary_graphs(max_nodes=8))
    @settings(max_examples=15, deadline=None)
    def test_disjoint_union(self, g1, g2):
        offset = g1.num_nodes
        union = Graph(
            g1.num_nodes + g2.num_nodes,
            list(g1.edges())
            + [(u + offset, v + offset) for u, v in g2.edges()],
        )
        bc1 = brandes_betweenness(g1, exact=True)
        bc2 = brandes_betweenness(g2, exact=True)
        bc_union = brandes_betweenness(union, exact=True)
        for v in g1.nodes():
            assert bc_union[v] == bc1[v]
        for v in g2.nodes():
            assert bc_union[v + offset] == bc2[v]
