"""Run the doctest examples embedded in module docstrings.

Keeps every ``>>>`` example in the source truthful — a stale docstring
example fails the suite.
"""

import doctest
import importlib

import pytest

MODULES_WITH_EXAMPLES = [
    "repro.graphs.graph",
    "repro.centrality.brandes",
    "repro.core.pipeline",
    "repro.core.weighted",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_EXAMPLES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, "{} lost its examples".format(module_name)
    assert results.failed == 0
