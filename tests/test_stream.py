"""Streaming telemetry: bus fan-out, live JSONL, progress estimation.

The contract under test (docs/observability.md, "Streaming"):

* streaming *observes*, never perturbs — a streamed run's outputs are
  bit-identical to a bare run's, and the live JSONL's core rows are
  exactly the rows :meth:`Telemetry.events` exports post-hoc;
* the :class:`~repro.obs.stream.ProgressEstimator` predicts from the
  closed-form phase schedule, so inside the stock envelope it reaches
  100% *exactly* at termination;
* telemetry-off keeps the zero-cost fast paths dark, and streaming
  flips only ``wants_ticks`` (never the per-send/per-round snapshots).
"""

import json

import pytest

from repro.cli import main
from repro.core import distributed_betweenness
from repro.graphs import connected_erdos_renyi_graph, cycle_graph, path_graph
from repro.obs import (
    BusSubscriber,
    ProgressEstimator,
    Telemetry,
    TelemetryBus,
    load_jsonl_rows,
    validate_rows,
)

ENGINES = ("sweep", "event")


def _fingerprint(result):
    return (
        sorted(result.betweenness.items()),
        result.diameter,
        result.rounds,
        result.stats.summary(),
    )


class TestBusFanout:
    @pytest.mark.parametrize("engine", ENGINES + ("auto",))
    def test_live_jsonl_matches_final_export(self, engine, tmp_path):
        """Core rows streamed live == rows exported after the run."""
        live = tmp_path / "live.jsonl"
        telemetry = Telemetry.with_streaming(
            jsonl_path=str(live), progress=True, console=False
        )
        distributed_betweenness(
            path_graph(16), engine=engine, telemetry=telemetry
        )
        telemetry.bus.close()
        streamed = [json.loads(line) for line in live.read_text().splitlines()]
        core = [row for row in streamed if row.get("event") != "progress"]
        assert core == telemetry.events()
        # Streaming-only rows ride on top and end with the pinned final.
        progress = [row for row in streamed if row.get("event") == "progress"]
        assert progress
        assert progress[-1]["final"] is True

    def test_subscriber_sees_every_row_in_order(self):
        telemetry = Telemetry.with_streaming(progress=True, console=False)
        subscriber = telemetry.bus.subscribe()
        distributed_betweenness(
            cycle_graph(12), engine="event", telemetry=telemetry
        )
        telemetry.bus.close()
        rows = subscriber.drain()
        assert subscriber.seen == telemetry.bus.published
        assert subscriber.dropped == 0
        core = [row for row in rows if row.get("event") != "progress"]
        assert core == telemetry.events()
        assert rows[0]["event"] == "meta"

    def test_ring_buffer_drops_oldest_under_pressure(self):
        bus = TelemetryBus()
        subscriber = bus.subscribe(capacity=4)
        for i in range(10):
            bus.publish({"event": "metric", "i": i})
        assert subscriber.seen == 10
        assert subscriber.dropped == 6
        kept = subscriber.peek()
        assert [row["i"] for row in kept] == [6, 7, 8, 9]
        # drain() consumes; a second drain is empty.
        assert subscriber.drain() == kept
        assert subscriber.drain() == []
        assert len(subscriber) == 0

    def test_standalone_subscriber_capacity(self):
        subscriber = BusSubscriber(capacity=2)
        for i in range(3):
            subscriber.push({"i": i})
        assert [row["i"] for row in subscriber.peek()] == [1, 2]

    @pytest.mark.parametrize("engine", ("event", "auto"))
    def test_streaming_never_perturbs_results(self, engine, tmp_path):
        graph = cycle_graph(24)
        bare = distributed_betweenness(graph, engine=engine)
        telemetry = Telemetry.with_streaming(
            jsonl_path=str(tmp_path / "s.jsonl"), progress=True, console=False
        )
        streamed = distributed_betweenness(
            graph, engine=engine, telemetry=telemetry
        )
        telemetry.bus.close()
        assert _fingerprint(streamed) == _fingerprint(bare)

    def test_streaming_off_keeps_fast_paths_dark(self):
        plain = Telemetry()
        assert plain.wants_ticks is False
        assert plain.wants_rounds is False
        assert plain.wants_sends is False
        streaming = Telemetry.with_streaming(progress=True, console=False)
        assert streaming.wants_ticks is True
        # Never flip the expensive hooks: that would force the bulk
        # engine off its closed-form no-replay path.
        assert streaming.wants_rounds is False
        assert streaming.wants_sends is False


class TestProgressEstimator:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(20), cycle_graph(17), connected_erdos_renyi_graph(18, 0.2, seed=5)],
        ids=["path", "cycle", "er"],
    )
    @pytest.mark.parametrize("engine", ENGINES)
    def test_estimate_is_exact_at_termination(self, graph, engine):
        """The closed-form prediction lands on 100% at the final round."""
        telemetry = Telemetry.with_streaming(progress=True, console=False)
        subscriber = telemetry.bus.subscribe(capacity=100_000)
        result = distributed_betweenness(
            graph, engine=engine, telemetry=telemetry
        )
        telemetry.bus.close()
        progress = [
            row for row in subscriber.drain() if row.get("event") == "progress"
        ]
        final = progress[-1]
        assert final["final"] is True
        assert final["percent"] == 100.0
        assert final["exact"] is True
        assert final["round"] == result.rounds
        assert final["rounds_total"] == result.rounds
        percents = [row["percent"] for row in progress if "percent" in row]
        assert percents == sorted(percents)
        assert all(0.0 <= p <= 100.0 for p in percents)

    def test_bulk_pins_terminal_row_without_schedule(self):
        """Bulk has no round loop: one terminal 100% row, no derivation."""
        pytest.importorskip("numpy")
        telemetry = Telemetry.with_streaming(progress=True, console=False)
        subscriber = telemetry.bus.subscribe()
        result = distributed_betweenness(
            cycle_graph(16), engine="bulk", telemetry=telemetry
        )
        telemetry.bus.close()
        progress = [
            row for row in subscriber.drain() if row.get("event") == "progress"
        ]
        assert len(progress) == 1
        assert progress[0]["final"] is True
        assert progress[0]["percent"] == 100.0
        assert progress[0]["round"] == result.rounds
        # The schedule was never derived for the bulk run (it would be
        # pure overhead), so the row carries no exactness claim.
        assert "rounds_total" not in progress[0]

    def test_unpredictable_run_reports_rounds_only(self):
        estimator = ProgressEstimator()
        row = estimator.row(10)
        assert row == {"event": "progress", "round": 10}
        assert estimator.fraction is None
        assert estimator.eta_seconds() is None
        final = estimator.finish(37)
        assert final["percent"] == 100.0
        assert "exact" not in final

    def test_eta_shrinks_with_progress(self):
        from repro.core.schedule import expected_phase_schedule

        ticks = iter(range(1, 100))
        estimator = ProgressEstimator(
            schedule=expected_phase_schedule(path_graph(10), root=0),
            clock=lambda: float(next(ticks)),
        )
        estimator._started = 0.0
        total = estimator.schedule.total_rounds
        early = estimator.row(max(1, total // 10))
        late = estimator.row(total - 1)
        assert early["eta_seconds"] > 0
        assert late["percent"] > early["percent"]


class TestStreamSchemaAndTornTail:
    def _streamed_rows(self, tmp_path):
        live = tmp_path / "run.jsonl"
        telemetry = Telemetry.with_streaming(
            jsonl_path=str(live), progress=True, console=False
        )
        distributed_betweenness(
            path_graph(12), engine="event", telemetry=telemetry
        )
        telemetry.bus.close()
        return live

    def test_streamed_jsonl_validates(self, tmp_path):
        live = self._streamed_rows(tmp_path)
        rows, warnings = load_jsonl_rows(str(live))
        assert not warnings
        assert validate_rows(rows, stream=True) == []
        # Progress heartbeats are stream-only: the strict (post-hoc)
        # vocabulary rejects them.
        assert validate_rows(rows) != []

    def test_torn_tail_is_skipped_with_warning(self, tmp_path):
        live = self._streamed_rows(tmp_path)
        text = live.read_text()
        complete = text.splitlines()[:-1]
        live.write_text("\n".join(complete) + '\n{"event": "metr')
        rows, warnings = load_jsonl_rows(str(live), allow_partial=True)
        assert len(rows) == len(complete)
        assert len(warnings) == 1
        assert "torn" in warnings[0] or "partial" in warnings[0]

    def test_validator_script_accepts_stream_log(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, "scripts")
        try:
            import validate_telemetry
        finally:
            sys.path.pop(0)
        live = self._streamed_rows(tmp_path)
        assert validate_telemetry.main(["--stream", str(live)]) == 0
        assert "OK" in capsys.readouterr().out
        # Strict mode rejects the same file (progress rows).
        assert validate_telemetry.main([str(live)]) == 1


class TestCliStreaming:
    def run(self, *argv):
        return main(list(argv))

    def test_report_stream_jsonl_and_from_roundtrip(self, tmp_path, capsys):
        live = tmp_path / "run.jsonl"
        assert self.run(
            "report", "--graph", "path:10", "--stream-jsonl", str(live)
        ) == 0
        first = capsys.readouterr().out
        assert "engine: requested=" in first
        assert self.run("report", "--from", str(live)) == 0
        replay = capsys.readouterr().out
        assert "phase" in replay

    def test_report_from_tolerates_torn_tail(self, tmp_path, capsys):
        """Satellite: a crashed run's log still renders, with a warning."""
        live = tmp_path / "run.jsonl"
        assert self.run(
            "report", "--graph", "path:10", "--stream-jsonl", str(live)
        ) == 0
        capsys.readouterr()
        live.write_text(live.read_text() + '{"event": "monitor", "na')
        assert self.run("report", "--from", str(live)) == 0
        captured = capsys.readouterr()
        assert "torn" in captured.err or "partial" in captured.err

    def test_report_from_flags_incomplete_run(self, tmp_path, capsys):
        live = tmp_path / "run.jsonl"
        assert self.run(
            "report", "--graph", "path:10", "--stream-jsonl", str(live)
        ) == 0
        capsys.readouterr()
        rows = [json.loads(line) for line in live.read_text().splitlines()]
        head = [
            row for row in rows
            if row.get("event") in ("meta", "phase", "progress")
        ]
        live.write_text("\n".join(json.dumps(row) for row in head) + "\n")
        assert self.run("report", "--from", str(live)) == 0
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_watch_renders_completed_log(self, tmp_path, capsys):
        live = tmp_path / "run.jsonl"
        assert self.run(
            "report", "--graph", "cycle:8", "--stream-jsonl", str(live)
        ) == 0
        capsys.readouterr()
        assert self.run("watch", str(live), "--no-follow") == 0
        out = capsys.readouterr().out
        assert "cycle-8" in out

    def test_chrome_trace_export(self, tmp_path, capsys):
        live = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.trace.json"
        assert self.run(
            "report", "--graph", "path:8",
            "--stream-jsonl", str(live), "--chrome-trace", str(chrome),
        ) == 0
        payload = json.loads(chrome.read_text())
        events = payload["traceEvents"]
        assert any(event["ph"] == "X" for event in events)
        assert any(event["ph"] == "M" for event in events)

    def test_run_many_stream_dir(self, tmp_path):
        from repro.analysis import run_many
        from repro.graphs import path_graph as build

        run_many(
            [build(6), build(8)],
            family="path",
            engine="event",
            stream_dir=str(tmp_path / "streams"),
        )
        streams = sorted((tmp_path / "streams").glob("*.jsonl"))
        assert len(streams) == 2
        for stream in streams:
            rows, warnings = load_jsonl_rows(str(stream))
            assert not warnings
            assert rows[0]["event"] == "meta"
            assert validate_rows(rows, stream=True) == []
