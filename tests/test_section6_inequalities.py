"""Direct verification of Section VI's lemmas on live protocol state.

* **Lemma 2** (corrected): the paper states
  psi_s(v) = sum over q in R_s(v) of 1/sigma_sq over the *set* of
  descendants; the induction's last step silently assumes each
  descendant is reached along a unique DAG path.  The correct identity
  weights each q by its DAG-path multiplicity sigma^s_vq — these tests
  verify the corrected form on every graph and exhibit a 5-node
  counterexample to the literal one (see docs/reproduction_notes.md).
* **Inequality (18)**: psi_hat <= psi (floor-rounded psi never
  overshoots) and psi_hat >= psi / (1+eta)^k — checked by running the
  protocol twice (exact and L-float) and comparing every node's psi for
  every source, straight out of the ledgers.
* **Inequality (17)'s basis**: sigma < sigma_hat < (1+eta)^k * sigma.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.centrality import (
    accumulate_psi,
    descendant_path_counts,
    shortest_path_descendants,
    single_source_shortest_paths,
)
from repro.core import distributed_betweenness
from repro.graphs import (
    figure1_graph,
    grid_graph,
    karate_club_graph,
    lollipop_graph,
)

from .conftest import connected_graphs


class TestLemma2Corrected:
    @pytest.mark.parametrize(
        "graph",
        [figure1_graph(), grid_graph(3, 4), lollipop_graph(4, 3),
         karate_club_graph()],
        ids=lambda g: g.name,
    )
    def test_psi_equals_weighted_descendant_sum(self, graph):
        for s in list(graph.nodes())[:6]:
            result = single_source_shortest_paths(graph, s)
            psi = accumulate_psi(result, exact=True)
            for v in graph.nodes():
                counts = descendant_path_counts(graph, s, v)
                expected = sum(
                    (
                        Fraction(multiplicity, result.sigma[q])
                        for q, multiplicity in counts.items()
                    ),
                    Fraction(0),
                )
                assert psi[v] == expected

    @given(connected_graphs(max_nodes=10))
    @settings(max_examples=15, deadline=None)
    def test_corrected_lemma2_random(self, graph):
        result = single_source_shortest_paths(graph, 0)
        psi = accumulate_psi(result, exact=True)
        for v in graph.nodes():
            counts = descendant_path_counts(graph, 0, v)
            expected = sum(
                (
                    Fraction(multiplicity, result.sigma[q])
                    for q, multiplicity in counts.items()
                ),
                Fraction(0),
            )
            assert psi[v] == expected

    def test_multiplicity_agrees_with_descendant_sets(self):
        """The weighted form's support is exactly R_s(v)."""
        graph = karate_club_graph()
        descendants = shortest_path_descendants(graph, 0)
        for v in list(graph.nodes())[:10]:
            counts = descendant_path_counts(graph, 0, v)
            assert set(counts) == descendants[v]

    def test_literal_lemma2_counterexample(self):
        """The paper's unweighted set form fails on a rejoining DAG.

        Take s=0 with edges 0-1, 1-2, 1-3, 2-4, 3-4: node 4 is a
        descendant of 1 along two branches.  psi_0(1) = 3 (matching
        delta_{0.}(1) = 3), but the literal set formula gives
        1 + 1 + 1/2 = 5/2.
        """
        from repro.graphs import Graph

        graph = Graph(5, [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)])
        result = single_source_shortest_paths(graph, 0)
        psi = accumulate_psi(result, exact=True)
        assert psi[1] == 3
        descendants = shortest_path_descendants(graph, 0)
        literal = sum(
            (Fraction(1, result.sigma[q]) for q in descendants[1]),
            Fraction(0),
        )
        assert literal == Fraction(5, 2)  # != psi: the set form is wrong
        counts = descendant_path_counts(graph, 0, 1)
        assert counts == {2: 1, 3: 1, 4: 2}

    def test_empty_descendants_means_zero_psi(self):
        """The Lemma's base case: R_s(v) = {} <=> psi_s(v) = 0."""
        graph = figure1_graph()
        result = single_source_shortest_paths(graph, 0)
        psi = accumulate_psi(result, exact=True)
        descendants = shortest_path_descendants(graph, 0)
        for v in graph.nodes():
            assert (psi[v] == 0) == (len(descendants[v]) == 0)


class TestInequality18OnLiveRuns:
    @pytest.mark.parametrize(
        "graph",
        [grid_graph(3, 4), karate_club_graph()],
        ids=lambda g: g.name,
    )
    def test_psi_hat_one_sided(self, graph):
        precision = 18
        exact_run = distributed_betweenness(graph, arithmetic="exact")
        float_run = distributed_betweenness(
            graph, arithmetic="lfloat-{}".format(precision)
        )
        eta = Fraction(2) ** (1 - precision)
        envelope = (1 + eta) ** (4 * graph.num_nodes)
        exact_by_node = {node.node_id: node for node in exact_run.nodes}
        for node in float_run.nodes:
            reference = exact_by_node[node.node_id]
            for record in node.ledger:
                psi_hat = record.psi.to_fraction()
                psi = reference.ledger.get(record.source).psi
                assert psi_hat <= psi  # floor rounding: never overshoots
                if psi:
                    assert psi_hat >= psi / envelope

    def test_sigma_hat_one_sided(self):
        """sigma <= sigma_hat <= (1+eta)^k sigma for every ledger entry."""
        graph = grid_graph(4, 4)
        precision = 18
        exact_run = distributed_betweenness(graph, arithmetic="exact")
        float_run = distributed_betweenness(
            graph, arithmetic="lfloat-{}".format(precision)
        )
        eta = Fraction(2) ** (1 - precision)
        envelope = (1 + eta) ** graph.num_nodes
        exact_by_node = {node.node_id: node for node in exact_run.nodes}
        for node in float_run.nodes:
            reference = exact_by_node[node.node_id]
            for record in node.ledger:
                sigma_hat = record.sigma.to_fraction()
                sigma = reference.ledger.get(record.source).sigma
                assert sigma_hat >= sigma  # ceil rounding
                assert sigma_hat <= sigma * envelope
