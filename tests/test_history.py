"""Run-history ledger: content-addressed keys, ingestion, regression gates.

The ledger (:mod:`repro.obs.history`) is an append-only JSONL file keyed
by a content address over (graph fingerprint, config, engine, git rev):
identical runs map to identical keys, so a regression is literally "the
same key with different numbers".  ``repro bench compare`` turns the
committed BENCH payloads into go/no-go gates: structural metrics
(rounds, billed bits, message counts, result identity) must match
exactly; wall-clock ratios get configurable headroom.
"""

import json

from repro.cli import main
from repro.core import distributed_betweenness
from repro.graphs import cycle_graph, path_graph
from repro.obs import (
    HistoryLedger,
    RegressionGates,
    compare_payloads,
    entry_from_result,
    graph_fingerprint,
    run_key,
)

CONFIG = {"arithmetic": "lfloat", "strict": True}


def engine_payload(**overrides):
    """A minimal BENCH_engine.json-shaped payload for gate tests."""
    row = {
        "family": "cycle",
        "n": 400,
        "rounds": 1206,
        "bits": 5_222_400,
        "messages": 320_400,
        "identical_results": True,
        "sweep_seconds": 2.0,
        "event_seconds": 1.0,
        "bulk_seconds": 0.2,
        "event_speedup": 2.0,
        "bulk_speedup": 10.0,
    }
    row.update(overrides)
    return {
        "benchmark": "engine_comparison",
        "engines": ["sweep", "event", "bulk"],
        "rows": [row],
    }


class TestContentAddressing:
    def test_identical_runs_identical_keys(self):
        graph = path_graph(9)
        key_a = run_key(graph_fingerprint(graph), CONFIG, "event", "abc123")
        key_b = run_key(graph_fingerprint(path_graph(9)), CONFIG, "event", "abc123")
        assert key_a == key_b
        assert len(key_a) == 16
        int(key_a, 16)  # hex-addressable

    def test_any_ingredient_changes_the_key(self):
        base = run_key(graph_fingerprint(path_graph(9)), CONFIG, "event", "abc")
        assert run_key(
            graph_fingerprint(path_graph(10)), CONFIG, "event", "abc"
        ) != base
        assert run_key(
            graph_fingerprint(path_graph(9)), CONFIG, "sweep", "abc"
        ) != base
        assert run_key(
            graph_fingerprint(path_graph(9)),
            dict(CONFIG, strict=False),
            "event",
            "abc",
        ) != base
        assert run_key(
            graph_fingerprint(path_graph(9)), CONFIG, "event", "def"
        ) != base

    def test_key_ignores_dict_ordering(self):
        shuffled = {"strict": True, "arithmetic": "lfloat"}
        fingerprint = graph_fingerprint(path_graph(9))
        assert run_key(fingerprint, CONFIG, "event", "abc") == run_key(
            fingerprint, shuffled, "event", "abc"
        )

    def test_graph_fingerprint_is_topology_only(self):
        from repro.graphs import Graph

        a = path_graph(7)
        b = Graph(7, [(i, i + 1) for i in range(6)], name="renamed")
        assert graph_fingerprint(a) == graph_fingerprint(b)


class TestLedger:
    def test_append_and_latest_by_key(self, tmp_path):
        ledger = HistoryLedger(tmp_path / "history.jsonl")
        graph = cycle_graph(10)
        result = distributed_betweenness(graph, engine="event")
        entry = entry_from_result(
            result, graph, CONFIG, git_rev="abc", wall_seconds=0.5
        )
        ledger.append(entry)
        ledger.append(dict(entry, wall_seconds=0.4))
        assert len(ledger) == 2
        latest = ledger.latest(entry["key"])
        assert latest["wall_seconds"] == 0.4
        assert latest["rounds"] == result.rounds
        assert latest["schema"] == "repro-history-v1"

    def test_identical_runs_share_a_ledger_key(self, tmp_path):
        ledger = HistoryLedger(tmp_path / "history.jsonl")
        keys = set()
        for _ in range(2):
            graph = cycle_graph(10)
            result = distributed_betweenness(graph, engine="event")
            stored = ledger.append(
                entry_from_result(result, graph, CONFIG, git_rev="abc")
            )
            keys.add(stored["key"])
        assert len(keys) == 1

    def test_append_repairs_torn_tail(self, tmp_path):
        """Appending after a crash must not corrupt the next record."""
        path = tmp_path / "history.jsonl"
        ledger = HistoryLedger(path)
        ledger.append({"kind": "run", "key": "a" * 16})
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "run", "key": "tor')  # no newline: torn
        ledger.append({"kind": "run", "key": "b" * 16})
        entries = ledger.entries()
        assert [e["key"] for e in entries] == ["a" * 16, "b" * 16]
        assert ledger.skipped_lines == 1

    def test_entries_filter_by_kind_and_key(self, tmp_path):
        ledger = HistoryLedger(tmp_path / "history.jsonl")
        ledger.append({"kind": "run", "key": "k1"})
        ledger.append({"kind": "bench_engine", "key": "k2"})
        assert [e["key"] for e in ledger.entries(kind="run")] == ["k1"]
        assert [e["key"] for e in ledger.entries(key="k2")] == ["k2"]

    def test_bench_ingestion(self, tmp_path):
        ledger = HistoryLedger(tmp_path / "history.jsonl")
        count = ledger.ingest_bench_engine(engine_payload(), git_rev="abc")
        assert count == 1
        entry = ledger.entries(kind="bench_engine")[0]
        assert entry["rounds"] == 1206
        assert entry["bits"] == 5_222_400
        assert entry["git_rev"] == "abc"


class TestRegressionGates:
    def test_self_compare_is_clean(self):
        violations, compared = compare_payloads(
            engine_payload(), engine_payload()
        )
        assert violations == []
        assert compared == 1

    def test_detects_injected_2x_slowdown(self):
        current = engine_payload(
            sweep_seconds=4.0, event_seconds=2.5, bulk_seconds=0.2
        )
        violations, _ = compare_payloads(engine_payload(), current)
        assert violations
        assert all(not v.hard for v in violations)
        assert any("event_seconds" == v.gate for v in violations)

    def test_detects_changed_rounds_as_hard_violation(self):
        violations, _ = compare_payloads(
            engine_payload(), engine_payload(rounds=1213)
        )
        assert any(v.gate == "rounds" and v.hard for v in violations)

    def test_detects_changed_billed_bits_as_hard_violation(self):
        violations, _ = compare_payloads(
            engine_payload(), engine_payload(bits=5_222_401)
        )
        assert any(v.gate == "bits" and v.hard for v in violations)

    def test_detects_speedup_regression(self):
        violations, _ = compare_payloads(
            engine_payload(), engine_payload(bulk_speedup=5.0)
        )
        assert any(v.gate == "bulk_speedup" for v in violations)
        # A drop within the 20% envelope passes.
        violations, _ = compare_payloads(
            engine_payload(), engine_payload(bulk_speedup=8.5)
        )
        assert violations == []

    def test_identity_break_is_hard(self):
        violations, _ = compare_payloads(
            engine_payload(), engine_payload(identical_results=False)
        )
        assert any(v.gate == "identity" and v.hard for v in violations)

    def test_no_wall_skips_soft_gates_only(self):
        gates = RegressionGates(check_wall=False)
        current = engine_payload(sweep_seconds=40.0, rounds=9999)
        violations, _ = compare_payloads(
            engine_payload(), current, gates=gates
        )
        assert violations
        assert all(v.hard for v in violations)

    def test_mismatched_benchmark_kind_is_a_schema_violation(self):
        violations, compared = compare_payloads(
            engine_payload(), {"benchmark": "fault_layer"}
        )
        assert compared == 0
        assert any(v.gate == "schema" and v.hard for v in violations)


class TestCliBench:
    def run(self, *argv):
        return main(list(argv))

    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_compare_clean_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", engine_payload())
        cur = self._write(tmp_path, "cur.json", engine_payload())
        assert self.run("bench", "compare", base, cur) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_compare_slowdown_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", engine_payload())
        cur = self._write(
            tmp_path, "cur.json",
            engine_payload(sweep_seconds=4.0, event_seconds=2.5),
        )
        assert self.run("bench", "compare", base, cur) == 1
        assert "event_seconds" in capsys.readouterr().out

    def test_compare_changed_rounds_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", engine_payload())
        cur = self._write(tmp_path, "cur.json", engine_payload(rounds=1300))
        assert self.run("bench", "compare", base, cur) == 1
        assert "rounds" in capsys.readouterr().out

    def test_warn_only_downgrades_exit_code(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", engine_payload())
        cur = self._write(tmp_path, "cur.json", engine_payload(rounds=1300))
        assert self.run("bench", "compare", base, cur, "--warn-only") == 0
        assert "rounds" in capsys.readouterr().out

    def test_no_wall_ignores_slowdown(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", engine_payload())
        cur = self._write(
            tmp_path, "cur.json", engine_payload(sweep_seconds=40.0)
        )
        assert self.run("bench", "compare", base, cur, "--no-wall") == 0

    def test_compare_records_to_ledger(self, tmp_path):
        base = self._write(tmp_path, "base.json", engine_payload())
        cur = self._write(tmp_path, "cur.json", engine_payload())
        ledger_path = tmp_path / "history.jsonl"
        assert self.run(
            "bench", "compare", base, cur, "--ledger", str(ledger_path)
        ) == 0
        assert len(HistoryLedger(ledger_path).entries(kind="bench_engine")) == 1

    def test_bench_ingest(self, tmp_path, capsys):
        payload = self._write(tmp_path, "bench.json", engine_payload())
        ledger_path = tmp_path / "history.jsonl"
        assert self.run(
            "bench", "ingest", payload, "--ledger", str(ledger_path)
        ) == 0
        assert len(HistoryLedger(ledger_path)) == 1
