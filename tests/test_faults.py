"""The fault-injection subsystem and the self-healing transport.

Four claims are under test, mirroring ``docs/fault-model.md``:

1. **Zero-cost disabled**: a run with ``faults=None`` and a run with an
   all-zero :class:`FaultPlan` are bit-identical on both engines —
   betweenness, rounds, per-round traffic, everything.
2. **Determinism**: the same plan produces the same fault schedule on
   both engines (hash-derived decisions, no consumed RNG stream).
3. **Recovery**: under drop/duplicate/delay/corrupt/transient-crash
   plans the resilient transport recovers betweenness values *exactly*
   equal to the fault-free run (and hence to Brandes).
4. **Graceful degradation**: an unrecoverable crash terminates the run
   early with a structured partial result whose completeness report
   names every affected source, and whose partial betweenness matches
   a Brandes restricted to the surviving sources.
"""

from collections import deque
from fractions import Fraction

import pytest

from repro.core import distributed_betweenness, distributed_sampled_betweenness
from repro.exceptions import (
    FrameChecksumError,
    GraphNotConnectedError,
    SimulationNotTerminatedError,
    SimulationStalledError,
)
from repro.faults import (
    Ack,
    CrashWindow,
    Envelope,
    FaultInjector,
    FaultPlan,
    Fence,
    LinkOutage,
    RESILIENT_CONGEST_FACTOR,
    make_resilient_factory,
    unwrap_node,
)
from repro.graphs import (
    Graph,
    connected_erdos_renyi_graph,
    figure1_graph,
    path_graph,
)
from repro.wire import (
    CHECKSUM_BITS,
    WireFormat,
    decode_frame_checked,
    encode_frame,
    encode_frame_checked,
    frame_checksum,
)


ENGINES = ("sweep", "event")


def _fingerprint(result):
    """Every observable of a protocol run, in comparable form.

    A fault-carrying run adds a ``faults`` block to the stats summary;
    pop it so zero-plan runs compare equal to ``faults=None`` runs.
    """
    summary = result.stats.summary()
    summary.pop("faults", None)
    return {
        "betweenness": sorted(result.betweenness.items()),
        "diameter": result.diameter,
        "rounds": result.rounds,
        "start_times": sorted(result.start_times.items()),
        "summary": summary,
        "round_series": result.stats.round_series,
        "worst_edge": result.stats.worst_edge,
    }


def _brandes_subset(graph, sources):
    """Brandes dependencies summed over ``sources`` only, halved."""
    nodes = list(graph.nodes())
    acc = {v: Fraction(0) for v in nodes}
    for s in sources:
        dist = {s: 0}
        sigma = {v: Fraction(0) for v in nodes}
        sigma[s] = Fraction(1)
        order = []
        preds = {v: [] for v in nodes}
        queue = deque([s])
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in graph.neighbors(v):
                if w not in dist:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist.get(w) == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        delta = {v: Fraction(0) for v in nodes}
        for w in reversed(order):
            for v in preds[w]:
                delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
            if w != s:
                acc[w] += delta[w]
    return {v: value / 2 for v, value in acc.items()}


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            drop_rate=0.1,
            duplicate_rate=0.05,
            delay_rate=0.2,
            max_delay=4,
            corrupt_rate=0.01,
            corrupt_bits=2,
            crashes=(CrashWindow(3, 10, 20), CrashWindow(5, 7, None)),
            link_outages=(LinkOutage(0, 1, 5, 25),),
            stall_patience=64,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_zero_plan_properties(self):
        plan = FaultPlan(seed=0)
        assert plan.is_zero
        assert not plan.has_channel_faults
        assert plan.permanent_crashes() == ()

    def test_permanent_crashes(self):
        plan = FaultPlan(
            crashes=(CrashWindow(2, 5, 9), CrashWindow(7, 3, None))
        )
        assert not plan.is_zero
        assert plan.permanent_crashes() == (7,)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_delay=0, delay_rate=0.1)
        with pytest.raises(ValueError):
            CrashWindow(0, 5, 5)
        with pytest.raises(ValueError):
            LinkOutage(2, 2, 0, 5)


# ----------------------------------------------------------------------
# frame checksums
# ----------------------------------------------------------------------
class TestFrameChecksum:
    def _wire(self):
        return WireFormat(num_nodes=16)

    def _frame(self):
        from repro.core.messages import DfsToken

        wire = self._wire()
        word, bits = encode_frame_checked((DfsToken(),), wire)
        return wire, word, bits

    def test_round_trip(self):
        wire, word, bits = self._frame()
        decoded = decode_frame_checked(word, bits, wire)
        assert len(decoded) == 1
        assert type(decoded[0]).__name__ == "DfsToken"

    def test_checksum_adds_exactly_eight_bits(self):
        from repro.core.messages import BfsWave

        wire = self._wire()
        _, plain_bits = encode_frame((BfsWave(3, 7, 2, 5),), wire)
        _, checked_bits = encode_frame_checked((BfsWave(3, 7, 2, 5),), wire)
        assert checked_bits == plain_bits + CHECKSUM_BITS

    def test_every_single_bit_flip_is_detected(self):
        # CRC-8 detects *all* single-bit errors; try every position.
        wire, word, bits = self._frame()
        for position in range(bits):
            with pytest.raises(FrameChecksumError):
                decode_frame_checked(word ^ (1 << position), bits, wire)

    def test_checksum_depends_on_length(self):
        # A frame of all-zero payload bits must not share its checksum
        # with a longer all-zero frame (the length prefix breaks the
        # CRC's zero-extension blindness).
        assert frame_checksum(0, 16) != frame_checksum(0, 24)


# ----------------------------------------------------------------------
# claim 1: zero-cost disabled path
# ----------------------------------------------------------------------
class TestZeroFaultIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_plan_is_bit_identical(self, engine):
        from repro.congest import Tracer

        graph = connected_erdos_renyi_graph(14, 0.25, seed=1)
        base_trace, zero_trace = Tracer(), Tracer()
        baseline = distributed_betweenness(
            graph, arithmetic="exact", engine=engine, tracer=base_trace
        )
        zero = distributed_betweenness(
            graph,
            arithmetic="exact",
            engine=engine,
            faults=FaultPlan(seed=9),
            tracer=zero_trace,
        )
        assert _fingerprint(zero) == _fingerprint(baseline)
        assert zero.stats.faults.total_injected == 0
        # The delivery trace (every message, sender, receiver, round)
        # is identical too — the disabled path perturbs nothing.
        assert zero_trace.to_json() == base_trace.to_json()
        assert not zero_trace.fault_events()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_resilient_zero_fault_matches_reliable(self, engine):
        graph = figure1_graph()
        reliable = distributed_betweenness(
            graph, arithmetic="exact", engine=engine
        )
        resilient = distributed_betweenness(
            graph, arithmetic="exact", engine=engine, resilient=True
        )
        assert resilient.betweenness_exact == reliable.betweenness_exact
        assert resilient.diameter == reliable.diameter
        assert resilient.completeness.complete

    def test_clean_run_completeness_report(self, figure1):
        result = distributed_betweenness(figure1, arithmetic="exact")
        report = result.completeness
        assert report.complete
        assert report.coverage == 1.0
        assert report.complete_sources == tuple(range(5))
        assert report.affected_sources == ()


# ----------------------------------------------------------------------
# claim 2: determinism across engines
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_plan_same_schedule_across_engines(self):
        graph = figure1_graph()
        plan = FaultPlan(seed=5, drop_rate=0.1, delay_rate=0.1)
        counters = []
        for engine in ENGINES:
            result = distributed_betweenness(
                graph,
                arithmetic="exact",
                engine=engine,
                faults=plan,
                resilient=True,
            )
            numbers = result.stats.faults.as_dict()
            # crash_rounds counts *stepped* crashed rounds, which the
            # event engine legitimately skips; everything else is a
            # pure function of (round, sender, receiver, edge_seq).
            numbers.pop("crash_rounds")
            counters.append((numbers, result.rounds))
        assert counters[0] == counters[1]

    def test_same_plan_same_run_repeated(self):
        graph = figure1_graph()
        plan = FaultPlan(seed=11, drop_rate=0.08, duplicate_rate=0.05)
        first = distributed_betweenness(
            graph, arithmetic="exact", faults=plan, resilient=True
        )
        second = distributed_betweenness(
            graph, arithmetic="exact", faults=plan, resilient=True
        )
        assert _fingerprint(first) == _fingerprint(second)
        assert (
            first.stats.faults.as_dict() == second.stats.faults.as_dict()
        )

    def test_different_seed_different_schedule(self):
        graph = figure1_graph()
        a = distributed_betweenness(
            graph,
            arithmetic="exact",
            faults=FaultPlan(seed=1, drop_rate=0.1),
            resilient=True,
        )
        b = distributed_betweenness(
            graph,
            arithmetic="exact",
            faults=FaultPlan(seed=2, drop_rate=0.1),
            resilient=True,
        )
        assert (
            a.stats.faults.as_dict() != b.stats.faults.as_dict()
            or a.rounds != b.rounds
        )


# ----------------------------------------------------------------------
# claim 3: exact recovery under recoverable plans
# ----------------------------------------------------------------------
RECOVERABLE_PLANS = [
    pytest.param(FaultPlan(seed=7, drop_rate=0.1), id="drop10"),
    pytest.param(
        FaultPlan(seed=3, duplicate_rate=0.1, delay_rate=0.15, max_delay=3),
        id="dup-delay",
    ),
    pytest.param(FaultPlan(seed=5, corrupt_rate=0.05), id="corrupt"),
    pytest.param(
        FaultPlan(seed=1, crashes=(CrashWindow(4, 10, 30),)),
        id="transient-crash",
    ),
    pytest.param(
        FaultPlan(seed=2, link_outages=(LinkOutage(0, 1, 5, 25),)),
        id="link-outage",
    ),
    pytest.param(
        FaultPlan(
            seed=13,
            drop_rate=0.08,
            duplicate_rate=0.05,
            delay_rate=0.1,
            corrupt_rate=0.03,
            crashes=(CrashWindow(2, 15, 35),),
        ),
        id="mix",
    ),
]


class TestRecovery:
    @pytest.mark.parametrize("plan", RECOVERABLE_PLANS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_recovered_bc_is_exact(self, engine, plan):
        graph = figure1_graph()
        reference = distributed_betweenness(
            graph, arithmetic="exact", engine=engine
        )
        recovered = distributed_betweenness(
            graph,
            arithmetic="exact",
            engine=engine,
            faults=plan,
            resilient=True,
        )
        assert recovered.completeness.complete
        assert recovered.betweenness_exact == reference.betweenness_exact
        assert recovered.stats.faults.total_injected > 0

    def test_recovery_on_random_graph(self):
        graph = connected_erdos_renyi_graph(12, 0.3, seed=4)
        reference = distributed_betweenness(graph, arithmetic="exact")
        recovered = distributed_betweenness(
            graph,
            arithmetic="exact",
            faults=FaultPlan(seed=21, drop_rate=0.05, delay_rate=0.05),
            resilient=True,
        )
        assert recovered.betweenness_exact == reference.betweenness_exact

    def test_transient_crash_records_recovery(self):
        result = distributed_betweenness(
            figure1_graph(),
            arithmetic="exact",
            faults=FaultPlan(seed=1, crashes=(CrashWindow(4, 10, 30),)),
            resilient=True,
        )
        assert result.completeness.complete
        assert len(result.stats.faults.recoveries) == 1
        node, start, alive = result.stats.faults.recoveries[0]
        assert (node, start, alive) == (4, 10, 30)


# ----------------------------------------------------------------------
# claim 4: graceful degradation under unrecoverable plans
# ----------------------------------------------------------------------
class TestGracefulDegradation:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_permanent_crash_yields_partial_result(self, engine):
        graph = figure1_graph()
        result = distributed_betweenness(
            graph,
            arithmetic="exact",
            engine=engine,
            faults=FaultPlan(seed=1, crashes=(CrashWindow(3, 40, None),)),
            resilient=True,
        )
        report = result.completeness
        assert not report.complete
        assert report.crashed_nodes == (3,)
        assert report.stalled_round is not None
        assert set(report.complete_sources) | set(
            report.affected_sources
        ) == set(range(5))
        assert report.complete_sources  # the crash at 40 is late enough
        reference = _brandes_subset(graph, report.complete_sources)
        for v in graph.nodes():
            assert result.betweenness_exact[v] == reference[v]

    def test_early_crash_loses_everything_but_terminates(self):
        result = distributed_betweenness(
            figure1_graph(),
            arithmetic="exact",
            faults=FaultPlan(seed=1, crashes=(CrashWindow(3, 12, None),)),
            resilient=True,
        )
        report = result.completeness
        assert not report.complete
        assert report.coverage == 0.0
        assert all(
            value == 0 for value in result.betweenness_exact.values()
        )

    def test_raw_permanent_crash_degrades_too(self):
        # Even without the resilient transport the pipeline converts
        # the stall into a partial result (best-effort completeness).
        result = distributed_betweenness(
            figure1_graph(),
            arithmetic="exact",
            faults=FaultPlan(seed=1, crashes=(CrashWindow(0, 3, None),)),
            resilient=False,
        )
        report = result.completeness
        assert not report.complete
        assert report.crashed_nodes == (0,)

    def test_simulator_raises_stalled_on_dead_run(self):
        from repro.arithmetic import ExactContext
        from repro.congest import Simulator
        from repro.core import make_node_factory

        graph = figure1_graph()
        simulator = Simulator(
            graph,
            make_node_factory(0, ExactContext()),
            faults=FaultPlan(seed=1, crashes=(CrashWindow(0, 3, None),)),
        )
        with pytest.raises(SimulationStalledError) as excinfo:
            simulator.run()
        err = excinfo.value
        assert err.crashed_nodes == (0,)
        assert err.pending_nodes
        assert err.round_number > err.last_progress_round


# ----------------------------------------------------------------------
# structured exceptions (satellite 1)
# ----------------------------------------------------------------------
class _SilentForever:
    """A node that never halts, to trip the round limit."""

    def __init__(self, node_id, neighbors):
        self.node_id = node_id
        self.neighbors = tuple(neighbors)
        self.done = False

    def on_start(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        pass

    def message_wakes(self, sender, message):
        return True


class TestStructuredExceptions:
    def test_not_terminated_carries_context(self):
        from repro.congest import Simulator

        graph = path_graph(3)
        simulator = Simulator(
            graph, lambda nid, nbrs: _SilentForever(nid, nbrs), max_rounds=5
        )
        with pytest.raises(SimulationNotTerminatedError) as excinfo:
            simulator.run()
        err = excinfo.value
        assert err.round_limit == 5
        assert err.round_number > 5
        assert err.pending_nodes == (0, 1, 2)
        assert err.graph_name == graph.name
        assert "5" in str(err)

    def test_stalled_error_message_names_crashed(self):
        err = SimulationStalledError(100, 40, (1, 2), (3,))
        assert "100" in str(err)
        assert err.pending_nodes == (1, 2)
        assert err.crashed_nodes == (3,)


# ----------------------------------------------------------------------
# malformed-input error paths (satellite 2)
# ----------------------------------------------------------------------
class TestMalformedInputs:
    def test_disconnected_graph_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphNotConnectedError):
            distributed_betweenness(graph)

    def test_empty_graph_rejected(self):
        from repro.exceptions import EmptyGraphError

        with pytest.raises(EmptyGraphError):
            distributed_betweenness(Graph(0, []))

    def test_sampled_pipeline_rejects_disconnected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphNotConnectedError):
            distributed_sampled_betweenness(graph, 2)

    def test_sampled_pipeline_rejects_empty(self):
        from repro.exceptions import EmptyGraphError

        with pytest.raises(EmptyGraphError):
            distributed_sampled_betweenness(Graph(0, []), 1)


# ----------------------------------------------------------------------
# transport unit behavior
# ----------------------------------------------------------------------
class TestResilientTransport:
    def test_factory_wraps_and_unwraps(self):
        from repro.arithmetic import ExactContext
        from repro.core import make_node_factory

        factory = make_resilient_factory(make_node_factory(0, ExactContext()))
        node = factory(1, (0, 2))
        assert unwrap_node(node) is node.inner
        assert node.inner.node_id == 1

    def test_transport_messages_are_sized(self):
        from repro.core.messages import DfsToken

        wire = WireFormat(num_nodes=16)
        envelope = Envelope(3, 2, False, DfsToken())
        fence = Fence(5, 2, 1, False, False)
        ack = Ack(7)
        for message in (envelope, fence, ack):
            assert message.bit_size(wire) > 0
        # Transport frames are honestly sized but carry no wire tag
        # (the 4-bit registry is full), so they cannot be framed.
        assert type(envelope).wire_tag is None
        assert type(ack).wire_tag is None

    def test_resilient_budget_is_scaled(self):
        from repro.congest.simulator import DEFAULT_CONGEST_FACTOR

        assert RESILIENT_CONGEST_FACTOR == 4 * DEFAULT_CONGEST_FACTOR

    def test_retransmissions_happen_under_drops(self):
        result = distributed_betweenness(
            figure1_graph(),
            arithmetic="exact",
            faults=FaultPlan(seed=7, drop_rate=0.15),
            resilient=True,
        )
        nodes = result.nodes
        # The pipeline exposes the unwrapped protocol nodes; dig the
        # retransmission count out of the stats instead.
        assert result.stats.faults.dropped > 0
        assert result.completeness.complete


# ----------------------------------------------------------------------
# injector internals
# ----------------------------------------------------------------------
class TestInjector:
    def test_decisions_are_pure(self):
        plan = FaultPlan(seed=3, crashes=(CrashWindow(1, 5, 10),))
        injector = FaultInjector(plan)
        assert injector.node_crashed(1, 5)
        assert injector.node_crashed(1, 9)
        assert not injector.node_crashed(1, 10)
        assert not injector.node_crashed(2, 7)
        # Purity: repeated queries do not change the answer or stats.
        before = injector.stats.as_dict()
        injector.node_crashed(1, 5)
        assert injector.stats.as_dict() == before

    def test_link_outage_drops_sent_messages(self):
        from repro.congest import IntMessage

        plan = FaultPlan(seed=0, link_outages=(LinkOutage(0, 1, 2, 4),))
        injector = FaultInjector(plan)
        assert injector.deliveries(2, 0, 1, IntMessage(1)) == []
        assert injector.deliveries(2, 1, 0, IntMessage(1)) == []
        delivered = injector.deliveries(4, 0, 1, IntMessage(1))
        assert len(delivered) == 1
        assert delivered[0][0] == 5  # next-round delivery

    def test_trace_records_fault_events(self):
        from repro.congest import Tracer

        tracer = Tracer()
        result = distributed_betweenness(
            figure1_graph(),
            arithmetic="exact",
            faults=FaultPlan(seed=7, drop_rate=0.1),
            resilient=True,
            tracer=tracer,
        )
        events = tracer.fault_events()
        assert events
        assert result.stats.faults.dropped == sum(
            1 for event in events if event.kind == "drop"
        )
        summary = tracer.fault_summary()
        assert summary["drop"] == result.stats.faults.dropped
