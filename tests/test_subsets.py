"""Tests for the subset-family machinery (Corollary 2 encodings)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LowerBoundParameterError
from repro.lowerbound import (
    all_half_subsets,
    families_intersect,
    family_pair,
    half_size,
    minimal_m,
    random_family,
    subset_rank,
    subset_unrank,
)


class TestHalfSize:
    def test_basic(self):
        assert half_size(6) == 3

    def test_odd_rejected(self):
        with pytest.raises(LowerBoundParameterError):
            half_size(5)

    def test_zero_rejected(self):
        with pytest.raises(LowerBoundParameterError):
            half_size(0)


class TestMinimalM:
    def test_paper_example(self):
        """Figure 2's caption: m = 4, n = 2 satisfies C(m, m/2) >= n^2."""
        assert minimal_m(2) == 4

    def test_logarithmic_growth(self):
        # C(m, m/2) ~ 2^m / sqrt(m), so m ~ 2 log2 n + o(log n)
        for n in (4, 16, 64, 256):
            m = minimal_m(n)
            assert math.comb(m, m // 2) >= n * n
            assert math.comb(m - 2, (m - 2) // 2) < n * n
            assert m <= 4 * math.log2(n) + 8

    def test_relaxed(self):
        assert minimal_m(3, squared=False) == 4

    def test_invalid(self):
        with pytest.raises(LowerBoundParameterError):
            minimal_m(0)


class TestRanking:
    def test_first_and_last(self):
        assert subset_rank([0, 1, 2], 6) == 0
        assert subset_rank([3, 4, 5], 6) == math.comb(6, 3) - 1

    def test_unrank_inverts_rank_exhaustively(self):
        m, k = 8, 4
        for rank in range(math.comb(m, k)):
            subset = subset_unrank(rank, m, k)
            assert subset_rank(sorted(subset), m) == rank

    @given(st.integers(0, math.comb(12, 6) - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, rank):
        subset = subset_unrank(rank, 12, 6)
        assert len(subset) == 6
        assert subset_rank(sorted(subset), 12) == rank

    def test_unrank_out_of_range(self):
        with pytest.raises(LowerBoundParameterError):
            subset_unrank(math.comb(6, 3), 6, 3)

    def test_lexicographic_order(self):
        subsets = [tuple(sorted(subset_unrank(r, 6, 3))) for r in range(5)]
        assert subsets == sorted(subsets)


class TestFamilies:
    def test_all_half_subsets(self):
        subsets = all_half_subsets(4)
        assert len(subsets) == 6
        assert all(len(s) == 2 for s in subsets)

    def test_random_family_distinct(self):
        family = random_family(10, 8, seed=3)
        assert len(set(family)) == 10

    def test_random_family_too_many(self):
        with pytest.raises(LowerBoundParameterError):
            random_family(10, 4, seed=0)

    def test_random_family_with_replacement(self):
        family = random_family(30, 4, seed=0, distinct=False)
        assert len(family) == 30

    def test_family_pair_forced_intersection(self):
        for seed in range(6):
            x, y, m = family_pair(5, seed=seed, force_intersection=True)
            assert families_intersect(x, y)
            assert len(set(y)) == len(y)

    def test_family_pair_forced_disjoint(self):
        for seed in range(6):
            x, y, m = family_pair(5, seed=seed, force_intersection=False)
            assert not families_intersect(x, y)

    def test_family_pair_auto_m(self):
        x, y, m = family_pair(4, seed=0)
        assert len(x) == len(y) == 4
        assert all(len(s) == m // 2 for s in x + y)

    def test_family_pair_too_small_m_for_disjoint(self):
        with pytest.raises(LowerBoundParameterError):
            family_pair(4, m=4, seed=0, force_intersection=False)
