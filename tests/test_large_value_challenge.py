"""The "Large Value Challenge" (Section V): exact counts break CONGEST.

On a diamond chain, sigma doubles per diamond, so exact-arithmetic BFS
waves carry Theta(N)-bit integers and must blow the strict per-edge
budget, while the same protocol under L-float arithmetic stays within
O(log N) bits and still delivers accurate betweenness.  This is the
machine-checked version of the paper's motivation for Section VI.
"""

import pytest

from repro.centrality import brandes_betweenness
from repro.core import distributed_betweenness
from repro.exceptions import CongestViolationError
from repro.graphs import diamond_chain_graph

# 80 diamonds: sigma reaches 2**80, so an exact BFS wave costs 81 bits
# of payload plus ~31 bits of protocol fields = 112 bits, while an
# L-float (L=8) wave costs 2L + 1 = 17 payload bits = 48 total (64 when
# a convergecast message shares the edge).  A strict budget of
# 12 * ceil(log2(241)) = 96 bits separates the two regimes.
CHAIN = diamond_chain_graph(80)
FACTOR = 12


class TestLargeValueChallenge:
    def test_exact_arithmetic_violates_congest(self):
        with pytest.raises(CongestViolationError) as err:
            distributed_betweenness(
                CHAIN, arithmetic="exact", congest_factor=FACTOR
            )
        assert err.value.bits_used > err.value.bits_allowed

    def test_lfloat_fits_same_budget(self):
        result = distributed_betweenness(
            CHAIN, arithmetic="lfloat-8", congest_factor=FACTOR
        )
        assert result.stats.max_edge_bits_per_round <= FACTOR * 8

    def test_lfloat_still_accurate(self):
        result = distributed_betweenness(
            CHAIN, arithmetic="lfloat", congest_factor=32
        )
        reference = brandes_betweenness(CHAIN, exact=True)
        for v in CHAIN.nodes():
            if reference[v]:
                err = abs(result.betweenness[v] / float(reference[v]) - 1.0)
                assert err < 1e-2

    def test_exact_mode_passes_in_lenient_mode(self):
        """Without enforcement the exact run still gets the right answer —
        the CONGEST model is what makes big values a *distributed* problem."""
        result = distributed_betweenness(
            diamond_chain_graph(12), arithmetic="exact", strict=False
        )
        reference = brandes_betweenness(diamond_chain_graph(12), exact=True)
        assert result.betweenness_exact == reference
