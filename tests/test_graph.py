"""Tests for the core Graph and GraphBuilder types."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import (
    EmptyGraphError,
    InvalidEdgeError,
    UnknownNodeError,
)
from repro.graphs import Graph, GraphBuilder, canonical_edge


class TestGraphConstruction:
    def test_basic_counts(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_isolated_nodes_allowed(self):
        g = Graph(5, [(0, 1)])
        assert g.degree(4) == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(EmptyGraphError):
            Graph(-1)

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidEdgeError):
            Graph(2, [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(InvalidEdgeError):
            Graph(2, [(0, 1), (1, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(InvalidEdgeError):
            Graph(2, [(0, 2)])

    def test_edges_canonicalized_and_sorted(self):
        g = Graph(4, [(3, 2), (1, 0)])
        assert g.edges() == ((0, 1), (2, 3))

    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2) == (0, 1, 3)

    def test_unknown_node_raises(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(UnknownNodeError):
            g.neighbors(5)
        with pytest.raises(UnknownNodeError):
            g.degree(-1)


class TestGraphQueries:
    def test_has_edge_both_orientations(self):
        g = Graph(3, [(0, 2)])
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_has_edge_out_of_range_is_false(self):
        g = Graph(2, [(0, 1)])
        assert not g.has_edge(0, 9)

    def test_contains_and_iter(self):
        g = Graph(3, [(0, 1)])
        assert 2 in g
        assert 3 not in g
        assert list(g) == [0, 1, 2]
        assert len(g) == 3

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3

    def test_equality_and_hash(self):
        g1 = Graph(3, [(0, 1)])
        g2 = Graph(3, [(1, 0)])
        g3 = Graph(3, [(0, 2)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3
        assert g1 != "not a graph"

    def test_with_name_shares_structure(self):
        g = Graph(3, [(0, 1)], name="a")
        h = g.with_name("b")
        assert h.name == "b"
        assert h == g

    def test_repr_mentions_counts(self):
        g = Graph(3, [(0, 1)], name="tri")
        assert "N=3" in repr(g)
        assert "tri" in repr(g)


class TestSubgraph:
    def test_induced_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.edges() == ((0, 1), (1, 2))

    def test_subgraph_dedupes_keep_list(self):
        g = Graph(3, [(0, 1)])
        sub = g.subgraph([0, 1, 0])
        assert sub.num_nodes == 2

    def test_subgraph_unknown_node(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(UnknownNodeError):
            g.subgraph([0, 7])


class TestCanonicalEdge:
    @given(st.integers(0, 100), st.integers(0, 100))
    def test_canonical_edge_sorted(self, u, v):
        a, b = canonical_edge(u, v)
        assert a <= b
        assert {a, b} == {u, v}


class TestGraphBuilder:
    def test_idempotent_add_edge(self):
        b = GraphBuilder()
        b.add_edge("x", "y").add_edge("y", "x")
        assert b.num_edges == 1
        assert b.num_nodes == 2

    def test_labels_dense_in_first_seen_order(self):
        b = GraphBuilder()
        b.add_edge("c", "a").add_edge("a", "b")
        g, labels = b.build_with_labels()
        assert labels == ["c", "a", "b"]
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_add_node_isolated(self):
        b = GraphBuilder()
        b.add_node("solo")
        b.add_edge("x", "y")
        assert b.build().num_nodes == 3

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidEdgeError):
            GraphBuilder().add_edge("a", "a")

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2), (0, 1)])
        assert b.build().num_edges == 2

    def test_builder_repr(self):
        b = GraphBuilder()
        b.add_edge(1, 2)
        assert "nodes=2" in repr(b)
