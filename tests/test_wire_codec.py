"""Round-trip and exactness tests for the :mod:`repro.wire` codec.

Three layers of guarantees:

1. **bit primitives** — varint widths match what the writer actually
   emits, readers invert writers, malformed input is rejected;
2. **message codec** — every registered type encodes to exactly
   ``bit_size`` bits and decodes back field-for-field, including the
   L-float corner values (zero, extreme exponents, ceiling-rounded
   mantissas) and huge exact sigmas (the Large Value Challenge);
3. **frames** — coalesced per-edge frames are the concatenation of
   their message frames (the identity the simulator's ``frame_audit``
   enforces), and a full protocol run under the audit is clean.
"""

import random
from fractions import Fraction

import pytest

from repro.arithmetic import ExactContext, LFloat, LFloatArithmetic, Rounding
from repro.congest.primitives import Decide, Echo, Join, Wave
from repro.core import distributed_betweenness
from repro.exceptions import WireCodecError
from repro.graphs import figure1_graph
from repro.obs import Telemetry, WireExactnessMonitor
from repro.wire import (
    TYPE_TAG_BITS,
    AggStart,
    AggValue,
    Announce,
    BfsWave,
    BitReader,
    BitWriter,
    DfsToken,
    DoneReport,
    IntMessage,
    Message,
    PayloadMessage,
    SubtreeCount,
    TokenMessage,
    TreeJoin,
    TreeWave,
    WireFormat,
    decode_frame,
    encode_frame,
    layout_bits,
    register,
    registered_types,
    same_fields,
    uint_bits,
    value_bits,
)

WIRE = WireFormat(25)  # id_bits = distance_bits = 5, round_bits covers 6N+16
PRECISION = 8
EXACT = ExactContext()
LFLOAT = LFloatArithmetic(PRECISION)


# ----------------------------------------------------------------------
# bit primitives
# ----------------------------------------------------------------------
def test_uint_bits_matches_actual_write_length():
    values = [0, 1, 2, 3, 6, 7, 8, 127, 128, 255, 2**20, 2**63, 2**100 - 1]
    rng = random.Random(2016)
    values += [rng.randrange(0, 1 << rng.randrange(1, 200)) for _ in range(200)]
    for value in values:
        writer = BitWriter()
        writer.write_uint(value)
        word, length = writer.getvalue()
        assert length == uint_bits(value)
        assert BitReader(word, length).read_uint() == value


def test_uint_bits_is_monotone_nondecreasing():
    widths = [uint_bits(v) for v in range(0, 4097)]
    assert widths == sorted(widths)
    assert widths[0] == 1  # the zero count is a single bit


def test_uint_bits_rejects_negative():
    with pytest.raises(WireCodecError):
        uint_bits(-1)
    with pytest.raises(WireCodecError):
        BitWriter().write_uint(-1)


def test_writer_rejects_values_wider_than_the_field():
    writer = BitWriter()
    with pytest.raises(WireCodecError):
        writer.write(8, 3)
    with pytest.raises(WireCodecError):
        writer.write(-1, 3)


def test_reader_rejects_truncated_reads():
    reader = BitReader(0b101, 3)
    reader.read(2)
    with pytest.raises(WireCodecError, match="truncated"):
        reader.read(2)


def test_reader_rejects_word_wider_than_declared():
    with pytest.raises(WireCodecError):
        BitReader(0b1000, 3)


def test_fraction_with_zero_denominator_rejected():
    from repro.wire import read_fraction

    writer = BitWriter()
    writer.write_uint(5)
    writer.write_uint(0)
    with pytest.raises(WireCodecError, match="zero denominator"):
        read_fraction(BitReader(*writer.getvalue()))


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_fills_the_entire_tag_space():
    types = registered_types()
    assert sorted(types) == list(range(1 << TYPE_TAG_BITS))
    for tag, cls in types.items():
        assert cls.wire_tag == tag


def test_register_rejects_out_of_range_tags():
    with pytest.raises(WireCodecError, match="tag space"):
        register(1 << TYPE_TAG_BITS)(type("Stray", (Message,), {}))
    with pytest.raises(WireCodecError, match="tag space"):
        register(-1)(type("Stray", (Message,), {}))


def test_register_rejects_tag_collisions_but_is_idempotent():
    with pytest.raises(WireCodecError, match="already registered"):
        register(0)(type("Impostor", (Message,), {}))
    assert register(0)(TokenMessage) is TokenMessage  # same class: no-op


# ----------------------------------------------------------------------
# randomized round trips over every registered type
# ----------------------------------------------------------------------
def _sigma(rng, mode):
    value = rng.randrange(1, 1 << rng.randrange(1, 80))
    if mode == "exact":
        return value
    return LFloat.from_int(value, PRECISION, Rounding.CEIL)


def _psi(rng, mode):
    value = Fraction(rng.randrange(1, 1 << 30), rng.randrange(1, 1 << 30))
    if mode == "exact":
        return value
    return LFloat.from_fraction(value, PRECISION, Rounding.FLOOR)


def _random_messages(rng, mode):
    """One instance of every frameable message type, random fields."""

    def node():
        return rng.randrange(WIRE.num_nodes)

    def dist():
        return rng.randrange(1 << WIRE.distance_bits)

    def stamp():
        return rng.randrange(1 << WIRE.round_bits)

    def count():
        return rng.randrange(1 << rng.randrange(1, 40))

    return [
        TokenMessage(),
        IntMessage(count()),
        TreeWave(dist()),
        TreeJoin(),
        SubtreeCount(count()),
        Announce(count()),
        DfsToken(rng.random() < 0.5),
        BfsWave(node(), stamp(), dist(), _sigma(rng, mode)),
        DoneReport(dist()),
        AggStart(dist(), stamp(), stamp()),
        AggValue(node(), _psi(rng, mode)),
        Wave(node(), dist()),
        Join(node()),
        Echo(node(), count()),
        Decide(node(), count()),
    ]


@pytest.mark.parametrize("mode", ["exact", "lfloat"])
def test_every_message_type_round_trips(mode):
    arith = EXACT if mode == "exact" else LFLOAT
    rng = random.Random(7 if mode == "exact" else 11)
    for _trial in range(50):
        for message in _random_messages(rng, mode):
            word, length = encode_frame((message,), WIRE)
            assert length == message.bit_size(WIRE)
            decoded = decode_frame(word, length, WIRE, arith)
            assert len(decoded) == 1
            assert same_fields(message, decoded[0])


@pytest.mark.parametrize("mode", ["exact", "lfloat"])
def test_coalesced_frame_is_the_concatenation_of_its_messages(mode):
    arith = EXACT if mode == "exact" else LFLOAT
    rng = random.Random(13)
    for _trial in range(20):
        batch = _random_messages(rng, mode)
        rng.shuffle(batch)
        batch = batch[: rng.randrange(1, len(batch) + 1)]
        word, length = encode_frame(batch, WIRE)
        assert length == sum(m.bit_size(WIRE) for m in batch)
        decoded = decode_frame(word, length, WIRE, arith)
        assert len(decoded) == len(batch)
        for sent, received in zip(batch, decoded):
            assert same_fields(sent, received)


def test_explicit_payload_bits_agree_with_the_layout():
    # BfsWave and AggValue override payload_bits with a closed form;
    # the override must agree with the generic layout walk.
    rng = random.Random(17)
    for mode in ("exact", "lfloat"):
        for _trial in range(20):
            for message in _random_messages(rng, mode):
                if type(message).WIRE_LAYOUT is None:
                    continue
                assert message.payload_bits(WIRE) == layout_bits(message, WIRE)


def test_bit_size_is_tag_plus_payload_and_cached():
    message = IntMessage(7)
    first = message.bit_size(WIRE)
    assert first == TYPE_TAG_BITS + message.payload_bits(WIRE)
    assert message.bit_size(WIRE) == first  # memoized path


# ----------------------------------------------------------------------
# L-float corner values
# ----------------------------------------------------------------------
_LIMIT = (1 << PRECISION) - 1

LFLOAT_CORNERS = [
    LFloat.zero(PRECISION),
    # extreme exponents, both signs
    LFloat(1 << (PRECISION - 1), _LIMIT, PRECISION),
    LFloat(_LIMIT, -_LIMIT, PRECISION),
    # ceiling rounding forced a mantissa increment (257 -> 258 at L=8)
    LFloat.from_int(257, PRECISION, Rounding.CEIL),
    # ceiling rounding overflowed into the next binade (511 -> 512)
    LFloat.from_int(511, PRECISION, Rounding.CEIL),
    # floor keeps the truncated mantissa (psi semantics)
    LFloat.from_fraction(Fraction(1, 3), PRECISION, Rounding.FLOOR),
]


@pytest.mark.parametrize("value", LFLOAT_CORNERS, ids=lambda lf: repr(lf))
def test_lfloat_corner_values_round_trip_exactly(value):
    assert value.bit_size() == 2 * PRECISION + 1
    decoded = LFloat.decode(value.encode(), PRECISION)
    assert decoded.mantissa == value.mantissa
    assert decoded.exponent == value.exponent

    # ... and through a full message frame, with the protocol's directed
    # rounding reconstructed by the arithmetic context.
    wave = BfsWave(3, 10, 2, value)
    word, length = encode_frame((wave,), WIRE)
    assert length == wave.bit_size(WIRE)
    (decoded_wave,) = decode_frame(word, length, WIRE, LFLOAT)
    assert decoded_wave.sigma.to_fraction() == value.to_fraction()
    assert decoded_wave.sigma.rounding is Rounding.CEIL

    report = AggValue(4, value)
    word, length = encode_frame((report,), WIRE)
    (decoded_report,) = decode_frame(word, length, WIRE, LFLOAT)
    assert decoded_report.value.to_fraction() == value.to_fraction()
    assert decoded_report.value.rounding is Rounding.FLOOR


def test_ceiling_rounded_corner_actually_rounded_up():
    lf = LFloat.from_int(257, PRECISION, Rounding.CEIL)
    assert lf.to_fraction() == Fraction(258)  # not representable: 257 -> 258
    lf = LFloat.from_int(511, PRECISION, Rounding.CEIL)
    assert lf.to_fraction() == Fraction(512)  # overflow into the next binade


def test_large_value_challenge_sigmas_round_trip():
    # Theta(N)-bit exact sigmas must survive the wire at faithful cost.
    sigma = 2**200 + 12345
    wave = BfsWave(1, 5, 3, sigma)
    word, length = encode_frame((wave,), WIRE)
    assert length == wave.bit_size(WIRE)
    assert value_bits(sigma) >= 200  # faithful, within O(log) of minimal
    (decoded,) = decode_frame(word, length, WIRE, EXACT)
    assert decoded.sigma == sigma


# ----------------------------------------------------------------------
# error paths
# ----------------------------------------------------------------------
def test_opaque_payloads_encode_but_refuse_to_decode():
    message = PayloadMessage(payload={"anything": 1}, bits=12)
    word, length = encode_frame((message,), WIRE)
    assert length == message.bit_size(WIRE) == TYPE_TAG_BITS + 12
    with pytest.raises(WireCodecError, match="opaque"):
        decode_frame(word, length, WIRE, EXACT)


def test_unregistered_message_cannot_be_framed():
    class Untagged(Message):
        WIRE_LAYOUT = ()

    with pytest.raises(WireCodecError, match="no registered wire tag"):
        encode_frame((Untagged(),), WIRE)


def test_decoding_arithmetic_fields_needs_a_context():
    wave = BfsWave(0, 0, 0, 1)
    word, length = encode_frame((wave,), WIRE)
    with pytest.raises(WireCodecError, match="arithmetic context"):
        decode_frame(word, length, WIRE)


def test_truncated_frame_is_rejected():
    wave = BfsWave(3, 10, 2, 7)
    word, length = encode_frame((wave,), WIRE)
    with pytest.raises(WireCodecError, match="truncated"):
        decode_frame(word >> 3, length - 3, WIRE, EXACT)


def test_layout_bits_requires_a_layout():
    message = PayloadMessage(payload=None, bits=4)
    with pytest.raises(WireCodecError, match="WIRE_LAYOUT"):
        layout_bits(message, WIRE)


def test_same_fields_discriminates_types_and_values():
    assert same_fields(TreeWave(3), TreeWave(3))
    assert not same_fields(TreeWave(3), TreeWave(4))
    assert not same_fields(TreeWave(3), DoneReport(3))
    assert not same_fields(PayloadMessage(1, 4), PayloadMessage(1, 4))


# ----------------------------------------------------------------------
# end to end: the audit holds on real protocol traffic
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["exact", "lfloat"])
def test_frame_audit_passes_on_a_clean_run(mode):
    result = distributed_betweenness(
        figure1_graph(), arithmetic=mode, frame_audit=True
    )
    assert result.rounds > 0  # ran to completion with every frame checked


def test_wire_exactness_monitor_clean_on_real_traffic():
    monitor = WireExactnessMonitor("raise")
    distributed_betweenness(
        figure1_graph(),
        arithmetic="lfloat",
        telemetry=Telemetry(monitors=[monitor]),
    )
    verdict = monitor.verdict()
    assert verdict.status == "OK"
    assert verdict.checked > 0
    assert verdict.detail["unencodable_sends"] == 0


def test_frame_audit_catches_a_dishonest_bit_size():
    # A message billing fewer bits than it encodes to must abort the run.
    from repro.congest import NodeAlgorithm, Simulator
    from repro.graphs import path_graph

    class Dishonest(IntMessage):
        def payload_bits(self, wire):
            return 1  # lie: the real frame carries a varint

    class Sender(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            if ctx.node_id == 0 and ctx.round_number == 0:
                ctx.send(1, Dishonest(1000))
            self.done = True

    simulator = Simulator(path_graph(2), Sender, frame_audit=True)
    with pytest.raises(WireCodecError, match="charged"):
        simulator.run()
