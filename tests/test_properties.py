"""Tests for sequential graph properties, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.exceptions import EmptyGraphError, GraphNotConnectedError
from repro.graphs import (
    Graph,
    all_pairs_distances,
    bfs_distances,
    bfs_layers,
    bfs_parents,
    connected_components,
    degree_histogram,
    diameter,
    distance_sum,
    eccentricities,
    eccentricity,
    grid_graph,
    is_connected,
    karate_club_graph,
    max_shortest_path_count,
    path_graph,
    predecessor_sets,
    radius,
    require_connected,
    shortest_path_counts,
    star_graph,
)
from repro.graphs.convert import to_networkx

from .conftest import arbitrary_graphs, connected_graphs


class TestBFS:
    def test_distances_on_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]
        assert bfs_distances(g, 2) == [2, 1, 0, 1, 2]

    def test_unreachable_marked(self):
        g = Graph(3, [(0, 1)])
        assert bfs_distances(g, 0) == [0, 1, -1]

    @given(arbitrary_graphs())
    @settings(max_examples=40, deadline=None)
    def test_distances_match_networkx(self, graph):
        nxg = to_networkx(graph)
        for source in range(min(3, graph.num_nodes)):
            expected = nx.single_source_shortest_path_length(nxg, source)
            mine = bfs_distances(graph, source)
            for v in graph.nodes():
                assert mine[v] == expected.get(v, -1)

    def test_layers(self):
        g = star_graph(4)
        assert bfs_layers(g, 0) == [[0], [1, 2, 3]]

    def test_parents_prefer_smallest_id(self):
        # both 0 and 1 are valid parents of 3; parent must be 0
        g = Graph(4, [(0, 2), (1, 2), (0, 3), (1, 3), (0, 1)])
        parents = bfs_parents(g, 2)
        assert parents[3] == 0

    def test_parents_of_source_is_none(self):
        g = path_graph(3)
        assert bfs_parents(g, 1)[1] is None


class TestSigmaAndPreds:
    def test_sigma_diamond(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert shortest_path_counts(g, 0) == [1, 1, 1, 2]

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_sigma_matches_networkx(self, graph):
        nxg = to_networkx(graph)
        sigma = shortest_path_counts(graph, 0)
        for v in graph.nodes():
            expected = len(list(nx.all_shortest_paths(nxg, 0, v)))
            assert sigma[v] == expected

    def test_sigma_unreachable_zero(self):
        g = Graph(3, [(0, 1)])
        assert shortest_path_counts(g, 0)[2] == 0

    def test_predecessors(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        preds = predecessor_sets(g, 0)
        assert preds[3] == (1, 2)
        assert preds[0] == ()

    def test_max_shortest_path_count_grid(self):
        # opposite corners of a 3x3 grid: C(4, 2) = 6 shortest paths
        assert max_shortest_path_count(grid_graph(3, 3)) == 6


class TestConnectivity:
    def test_is_connected(self):
        assert is_connected(path_graph(4))
        assert not is_connected(Graph(3, [(0, 1)]))
        assert is_connected(Graph(0))
        assert is_connected(Graph(1))

    def test_require_connected_errors(self):
        with pytest.raises(GraphNotConnectedError):
            require_connected(Graph(2))
        with pytest.raises(EmptyGraphError):
            require_connected(Graph(0))

    def test_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3], [4]]

    @given(arbitrary_graphs())
    @settings(max_examples=30, deadline=None)
    def test_components_partition_nodes(self, graph):
        comps = connected_components(graph)
        seen = sorted(v for comp in comps for v in comp)
        assert seen == list(graph.nodes())


class TestMetrics:
    def test_diameter_radius_path(self):
        g = path_graph(7)
        assert diameter(g) == 6
        assert radius(g) == 3

    def test_eccentricity(self):
        g = star_graph(5)
        assert eccentricity(g, 0) == 1
        assert eccentricity(g, 1) == 2
        assert eccentricities(g) == [1, 2, 2, 2, 2]

    def test_eccentricity_disconnected_raises(self):
        with pytest.raises(GraphNotConnectedError):
            eccentricity(Graph(2), 0)

    def test_distance_sum(self):
        g = path_graph(4)
        assert distance_sum(g, 0) == 6
        with pytest.raises(GraphNotConnectedError):
            distance_sum(Graph(2), 0)

    @given(connected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_diameter_matches_networkx(self, graph):
        assert diameter(graph) == nx.diameter(to_networkx(graph))

    def test_all_pairs_symmetric(self):
        g = karate_club_graph()
        dist = all_pairs_distances(g)
        for u in g.nodes():
            for v in g.nodes():
                assert dist[u][v] == dist[v][u]

    def test_degree_histogram(self):
        g = star_graph(4)
        assert degree_histogram(g) == {3: 1, 1: 3}
