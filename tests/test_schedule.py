"""Tests for the analytic schedule module (Figure 1 and Lemma 4)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    bfs_start_times,
    bfs_tree_children,
    count_collisions,
    dfs_preorder,
    figure1_tables,
    naive_start_times,
    sending_times,
    tree_walk_lengths,
    verify_separation,
)
from repro.exceptions import GraphError
from repro.graphs import (
    diameter,
    figure1_graph,
    grid_graph,
    karate_club_graph,
    path_graph,
    star_graph,
)

from .conftest import connected_graphs


class TestFigure1Reproduction:
    """Reproduce every number the paper quotes for its running example."""

    def test_start_times_shortcut_mode(self):
        """T_{v1..v5} = 0, 2, 4, 6, 8 (Section VII walkthrough)."""
        times = bfs_start_times(figure1_graph(), root=0, mode="shortcut")
        assert times == {0: 0, 1: 2, 2: 4, 3: 6, 4: 8}

    def test_v4_sending_times_per_tree(self):
        """The four sending times of v4 computed in the text:

        T_{v1}(v4) = 0 + 3 - 3 = 0,   T_{v2}(v4) = 2 + 3 - 2 = 3,
        T_{v3}(v4) = 4 + 3 - 1 = 6,   T_{v5}(v4) = 8 + 3 - 1 = 10.
        """
        tables = figure1_tables()
        v4 = 3
        assert tables[0][v4] == 0
        assert tables[1][v4] == 3
        assert tables[2][v4] == 6
        assert tables[4][v4] == 10

    def test_bfs_v1_full_table(self):
        """Sending times in BFS(v1): T(v) = 0 + 3 - d(v1, v)."""
        tables = figure1_tables()
        assert tables[0] == {0: 3, 1: 2, 2: 1, 3: 0, 4: 1}

    def test_dfs_preorder_is_v1_to_v5(self):
        assert dfs_preorder(figure1_graph(), 0) == [0, 1, 2, 3, 4]

    def test_separation_holds_for_paper_schedule(self):
        g = figure1_graph()
        times = bfs_start_times(g, 0, mode="shortcut")
        assert verify_separation(g, times)
        assert count_collisions(g, times) == 0


class TestTreeStructure:
    def test_children_min_id_parent(self):
        g = figure1_graph()
        children = bfs_tree_children(g, 0)
        assert children[0] == [1]
        assert children[1] == [2, 4]
        assert children[2] == [3]  # v4's parent is min(v3, v5) = v3
        assert children[3] == []

    def test_preorder_covers_all_nodes(self):
        g = karate_club_graph()
        order = dfs_preorder(g, 0)
        assert sorted(order) == list(g.nodes())
        assert order[0] == 0

    def test_tree_walk_lengths_path(self):
        g = path_graph(4)
        walk = tree_walk_lengths(g, 0)
        assert walk == [(0, 0), (1, 1), (2, 1), (3, 1)]

    def test_tree_walk_lengths_star(self):
        g = star_graph(4)
        walk = tree_walk_lengths(g, 0)
        # each later leaf needs a backtrack through the hub: 2 hops
        assert walk == [(0, 0), (1, 1), (2, 2), (3, 2)]

    def test_tree_walk_total_bounded_by_euler_tour(self):
        g = karate_club_graph()
        total_hops = sum(h for _, h in tree_walk_lengths(g, 0))
        assert total_hops <= 2 * (g.num_nodes - 1)


class TestStartTimeModes:
    @given(connected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_both_modes_satisfy_separation(self, graph):
        for mode in ("shortcut", "tree_walk"):
            times = bfs_start_times(graph, 0, mode=mode)
            assert verify_separation(graph, times)
            assert count_collisions(graph, times) == 0

    @given(connected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_shortcut_never_slower_than_tree_walk(self, graph):
        fast = bfs_start_times(graph, 0, mode="shortcut")
        slow = bfs_start_times(graph, 0, mode="tree_walk")
        assert max(fast.values()) <= max(slow.values())

    def test_t0_offset(self):
        g = path_graph(3)
        times = bfs_start_times(g, 0, mode="shortcut", t0=5)
        assert times[0] == 5

    def test_unknown_mode(self):
        with pytest.raises(GraphError):
            bfs_start_times(path_graph(3), 0, mode="teleport")


class TestCollisionAblation:
    def test_naive_schedule_collides(self):
        """All-sources-at-once scheduling breaks Lemma 4 massively."""
        g = karate_club_graph()
        naive = naive_start_times(g)
        assert not verify_separation(g, naive)
        assert count_collisions(g, naive) > g.num_nodes

    def test_collision_count_zero_iff_separated(self):
        g = grid_graph(3, 3)
        good = bfs_start_times(g, 0, mode="tree_walk")
        assert count_collisions(g, good) == 0
        # compress the schedule: collisions appear
        squeezed = {v: t // 2 for v, t in good.items()}
        if not verify_separation(g, squeezed):
            assert count_collisions(g, squeezed) > 0

    def test_sending_times_shape(self):
        g = path_graph(4)
        times = bfs_start_times(g, 0, mode="shortcut")
        tables = sending_times(g, times, diameter=diameter(g))
        assert set(tables.keys()) == set(g.nodes())
        for s, row in tables.items():
            # the farthest node sends first: T_s + D - d
            assert row[s] == times[s] + diameter(g)
