"""End-to-end user scenarios: realistic multi-step library workflows.

Each test walks a complete journey a downstream user would take —
load/generate data, run the distributed computation, cross-check,
export — exercising the interplay of subsystems rather than any one
unit.
"""

import json

from repro import (
    brandes_betweenness,
    distributed_betweenness,
    distributed_stress,
    distributed_weighted_betweenness,
    weighted_brandes_betweenness,
)
from repro.analysis import ExperimentRunner
from repro.congest import Tracer, elect_root
from repro.graphs import (
    GraphBuilder,
    WeightedGraph,
    dumps_json,
    karate_club_graph,
    les_miserables_graph,
    les_miserables_weighted_graph,
    loads_json,
    read_edge_list,
    write_edge_list,
)


class TestFileToAnalysisPipeline:
    def test_edge_list_roundtrip_to_bc(self, tmp_path):
        """Write a network to disk, read it back, analyze, verify."""
        graph = karate_club_graph()
        path = tmp_path / "club.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        result = distributed_betweenness(loaded, arithmetic="exact")
        assert result.betweenness_exact == brandes_betweenness(
            graph, exact=True
        )

    def test_labelled_build_analyze_report(self, tmp_path):
        """Build from labelled edges, analyze, export CSV."""
        builder = GraphBuilder(name="team")
        for a, b in [
            ("ana", "bo"), ("bo", "cy"), ("cy", "dee"), ("dee", "ana"),
            ("bo", "dee"), ("cy", "ed"),
        ]:
            builder.add_edge(a, b)
        graph, labels = builder.build_with_labels()
        result = distributed_betweenness(graph, arithmetic="exact")
        broker = max(graph.nodes(), key=lambda v: result.betweenness[v])
        assert labels[broker] == "cy"  # ed hangs off cy

        runner = ExperimentRunner(arithmetic="exact")
        runner.run_family("team", [graph])
        csv_text = runner.to_csv(tmp_path / "team.csv")
        assert "team" in csv_text

    def test_weighted_json_workflow(self, tmp_path):
        wg, labels = les_miserables_weighted_graph()
        # persist, reload, verify identity
        blob = dumps_json(wg)
        reloaded = loads_json(blob)
        assert isinstance(reloaded, WeightedGraph)
        assert reloaded.edges() == wg.edges()


class TestLesMiserablesStudy:
    """The classic 77-node co-appearance study, end to end."""

    def test_distributed_matches_brandes_at_scale(self):
        graph, labels = les_miserables_graph()
        result = distributed_betweenness(graph, arithmetic="exact")
        reference = brandes_betweenness(graph, exact=True)
        assert result.betweenness_exact == reference
        valjean = labels.index("Valjean")
        ranked = sorted(
            graph.nodes(), key=lambda v: result.betweenness[v], reverse=True
        )
        assert ranked[0] == valjean

    def test_rounds_linear_at_n77(self):
        graph, _ = les_miserables_graph()
        result = distributed_betweenness(graph)
        assert result.rounds <= 8 * graph.num_nodes
        from repro.core import predict_rounds

        assert predict_rounds(graph).total_rounds == result.rounds

    def test_stress_and_bc_rank_same_protagonist(self):
        graph, labels = les_miserables_graph()
        stress = distributed_stress(graph)
        valjean = labels.index("Valjean")
        assert stress.stress[valjean] == max(stress.stress.values())


class TestElectionToAnalysis:
    def test_fully_in_model_study(self):
        """Elect a root, run BC from it, confirm root-independence."""
        graph = karate_club_graph()
        leader, _rounds = elect_root(graph, seed=3)
        via_leader = distributed_betweenness(
            graph, arithmetic="exact", root=leader
        )
        via_zero = distributed_betweenness(graph, arithmetic="exact", root=0)
        assert via_leader.betweenness_exact == via_zero.betweenness_exact


class TestTraceArchiving:
    def test_trace_to_json_archive(self, tmp_path):
        """Archive a run's trace; reload and re-derive phase stats."""
        graph = karate_club_graph()
        tracer = Tracer()
        result = distributed_betweenness(graph, tracer=tracer)
        archive = tmp_path / "run.json"
        archive.write_text(tracer.to_json())
        payload = json.loads(archive.read_text())
        assert len(payload["events"]) == result.stats.message_count
        wave_rounds = [
            e[0] for e in payload["events"] if e[3] == "BfsWave"
        ]
        agg_rounds = [
            e[0] for e in payload["events"] if e[3] == "AggValue"
        ]
        assert max(wave_rounds) < min(agg_rounds)


class TestWeightedTransitStudy:
    def test_weighted_vs_unit_weights_disagree(self):
        """Travel times change who the bottleneck is — the reason the
        weighted extension matters."""
        wg = WeightedGraph(
            5,
            [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (0, 4, 9)],
            name="ring-with-slow-link",
        )
        weighted = distributed_weighted_betweenness(wg)
        assert weighted.betweenness_exact == weighted_brandes_betweenness(
            wg, exact=True
        )
        # with the slow link, nodes 1-3 carry through traffic...
        assert weighted.betweenness[2] > 0
        # ...whereas with unit weights the ring is symmetric
        unit = WeightedGraph(5, [(u, v, 1) for u, v, _ in wg.edges()])
        flat = distributed_weighted_betweenness(unit)
        values = set(flat.betweenness.values())
        assert len(values) == 1
