"""Tests for the analysis helpers: tables and complexity fitting."""

import pytest

from repro.analysis import (
    format_value,
    linear_fit,
    power_law_exponent,
    print_table,
    render_table,
    rounds_per_node,
)


class TestTables:
    def test_render_alignment(self):
        out = render_table(
            ["name", "value"], [["alpha", 1], ["b", 123456]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5
        # columns align
        assert lines[3].index("|") == lines[4].index("|")

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(0.0) == "0"
        assert format_value(1.5) == "1.5"
        assert format_value(1e-9) == "1.000e-09"
        assert format_value("x") == "x"
        assert format_value(12345678.0) == "1.235e+07"

    def test_print_table(self, capsys):
        print_table(["a"], [[1]])
        captured = capsys.readouterr()
        assert "a" in captured.out


class TestFitting:
    def test_perfect_linear(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_noisy_linear_r2(self):
        xs = list(range(10))
        ys = [2 * x + 1 + (0.1 if x % 2 else -0.1) for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.r_squared > 0.99

    def test_constant_y(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])
        with pytest.raises(ValueError):
            linear_fit([2, 2], [1, 3])

    def test_power_law_exponent_linear_data(self):
        xs = [10, 20, 40, 80]
        ys = [7 * x for x in xs]
        assert power_law_exponent(xs, ys) == pytest.approx(1.0)

    def test_power_law_exponent_quadratic_data(self):
        xs = [10, 20, 40, 80]
        ys = [x * x for x in xs]
        assert power_law_exponent(xs, ys) == pytest.approx(2.0)

    def test_power_law_requires_positive(self):
        with pytest.raises(ValueError):
            power_law_exponent([0, 1], [1, 2])

    def test_rounds_per_node(self):
        assert rounds_per_node([(10, 70), (20, 140)]) == [7.0, 7.0]
