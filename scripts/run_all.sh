#!/usr/bin/env bash
# Full reproduction pass: tests, every benchmark table, every example.
# Writes test_output.txt and bench_output.txt at the repo root, the
# benchmark tables to bench_tables.txt, and the family sweep to
# report.csv.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== benchmarks (timings) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt | tail -2

echo "== benchmarks (reproduction tables) =="
python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_tables.txt | tail -2

echo "== examples =="
for script in examples/*.py; do
    echo "--- ${script}"
    python "${script}" > /dev/null
done

echo "== family sweep CSV =="
python examples/full_report.py report.csv | tail -2

echo "all green"
