"""Quick engine-comparison smoke gate.

Runs a reduced version of ``benchmarks/bench_engine.py`` (one small size
plus N = 400, the regime the vectorized-engine acceptance gate cares
about), writes the same ``BENCH_engine.json`` artifact at the repo root,
and exits non-zero if either

* any engine disagrees with the sweep on any output (results, rounds,
  statistics, per-round series), or
* the event engine is *slower* than the sweep at any N >= 200 instance,
  or
* the bulk engine is below 5x over the sweep at any N >= 400 instance
  (the full benchmark reports 10-15x; 5x is the noise-proof floor).

Without numpy the bulk engine is skipped (the dispatcher would refuse
it) and only the sweep/event gates run.

Usage::

    python scripts/bench_smoke.py          # ~1 min on a 1-core container

The full benchmark (more sizes, N = 800, the stats-scaling microbench,
pytest-benchmark integration) lives in ``benchmarks/bench_engine.py``;
this script exists so CI and humans can get a pass/fail answer without
pulling in the pytest machinery.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from benchmarks.bench_engine import measure, write_json, _print_rows  # noqa: E402
from benchmarks.bench_faults import (  # noqa: E402
    measure_disabled_overhead,
    measure_recovery_overhead,
    print_report as print_faults_report,
    write_json as write_faults_json,
)

SIZES = (64, 400)
REPS = 2


def main() -> int:
    from repro.engines import numpy_available

    engines = ("sweep", "event", "bulk") if numpy_available() else ("sweep", "event")
    rows = measure(sizes=SIZES, reps=REPS, engines=engines)
    write_json(rows)
    _print_rows(rows, "engine smoke (best of {} interleaved reps)".format(REPS))
    print("wrote {}".format(ROOT / "BENCH_engine.json"))

    # Fault-layer gate: disabled path identical, recovery exact.
    disabled = measure_disabled_overhead(n=64, reps=REPS)
    recovery = measure_recovery_overhead(drop_rates=(0.0, 0.05))
    faults_payload = write_faults_json(disabled, recovery)
    print()
    print_faults_report(disabled, recovery)
    print("wrote {}".format(ROOT / "BENCH_faults.json"))

    # Record both payloads in the append-only run-history ledger so
    # ``repro bench compare --ledger`` and future sessions can gate
    # against this machine's trajectory, keyed by git revision.
    import json

    from repro.obs.history import DEFAULT_HISTORY_PATH, HistoryLedger, git_revision

    ledger = HistoryLedger(ROOT / DEFAULT_HISTORY_PATH)
    rev = git_revision(str(ROOT))
    engine_payload = json.loads((ROOT / "BENCH_engine.json").read_text())
    recorded = ledger.ingest_bench_engine(engine_payload, git_rev=rev)
    recorded += ledger.ingest_bench_faults(faults_payload, git_rev=rev)
    print(
        "ledger: {} entries appended to {} (rev {})".format(
            recorded, ledger.path, rev or "unknown"
        )
    )

    failures = []
    for row in rows:
        if not row["identical_results"]:
            failures.append(
                "{family}-{n}: engines disagree on outputs".format(**row)
            )
        if row["n"] >= 200 and row["event_speedup"] <= 1.0:
            failures.append(
                "{family}-{n}: event engine slower than sweep "
                "({event_seconds}s vs {sweep_seconds}s)".format(**row)
            )
        if row["n"] >= 400 and row.get("bulk_speedup", 10.0) < 5.0:
            failures.append(
                "{family}-{n}: bulk engine below 5x over sweep "
                "({bulk_seconds}s vs {sweep_seconds}s)".format(**row)
            )
    if not disabled["identical_results"]:
        failures.append(
            "fault layer: faults=None run differs from the bare call"
        )
    for row in recovery["rows"]:
        if not row["recovered_exactly"]:
            failures.append(
                "fault layer: drop rate {} did not recover exactly".format(
                    row["drop_rate"]
                )
            )
    if failures:
        for line in failures:
            print("FAIL: " + line, file=sys.stderr)
        return 1
    big = min(row["event_speedup"] for row in rows if row["n"] >= 200)
    line = "OK: outputs identical; event >= sweep at N >= 200 " \
        "(min speedup {:.2f}x)".format(big)
    bulk = [row["bulk_speedup"] for row in rows
            if row["n"] >= 400 and "bulk_speedup" in row]
    if bulk:
        line += "; bulk {:.1f}x over sweep at N >= 400".format(min(bulk))
    print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
