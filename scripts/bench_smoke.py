"""Quick engine-comparison smoke gate.

Runs a reduced version of ``benchmarks/bench_engine.py`` (one small size
plus one size at the N >= 200 regime the acceptance gate cares about),
writes the same ``BENCH_engine.json`` artifact at the repo root, and
exits non-zero if either

* the two engines disagree on any output (results, rounds, statistics,
  per-round series), or
* the event engine is *slower* than the sweep at any N >= 200 instance.

Usage::

    python scripts/bench_smoke.py          # ~15 s on a 1-core container

The full benchmark (more sizes, pytest-benchmark integration) lives in
``benchmarks/bench_engine.py``; this script exists so CI and humans can
get a pass/fail answer without pulling in the pytest machinery.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from benchmarks.bench_engine import measure, write_json, _print_rows  # noqa: E402
from benchmarks.bench_faults import (  # noqa: E402
    measure_disabled_overhead,
    measure_recovery_overhead,
    print_report as print_faults_report,
    write_json as write_faults_json,
)

SIZES = (64, 200)
REPS = 2


def main() -> int:
    rows = measure(sizes=SIZES, reps=REPS)
    write_json(rows)
    _print_rows(rows, "engine smoke (best of {} interleaved reps)".format(REPS))
    print("wrote {}".format(ROOT / "BENCH_engine.json"))

    # Fault-layer gate: disabled path identical, recovery exact.
    disabled = measure_disabled_overhead(n=64, reps=REPS)
    recovery = measure_recovery_overhead(drop_rates=(0.0, 0.05))
    write_faults_json(disabled, recovery)
    print()
    print_faults_report(disabled, recovery)
    print("wrote {}".format(ROOT / "BENCH_faults.json"))

    failures = []
    for row in rows:
        if not row["identical_results"]:
            failures.append(
                "{family}-{n}: engines disagree on outputs".format(**row)
            )
        if row["n"] >= 200 and row["speedup"] <= 1.0:
            failures.append(
                "{family}-{n}: event engine slower than sweep "
                "({event_seconds}s vs {sweep_seconds}s)".format(**row)
            )
    if not disabled["identical_results"]:
        failures.append(
            "fault layer: faults=None run differs from the bare call"
        )
    for row in recovery["rows"]:
        if not row["recovered_exactly"]:
            failures.append(
                "fault layer: drop rate {} did not recover exactly".format(
                    row["drop_rate"]
                )
            )
    if failures:
        for line in failures:
            print("FAIL: " + line, file=sys.stderr)
        return 1
    big = min(row["speedup"] for row in rows if row["n"] >= 200)
    print("OK: outputs identical; event >= sweep at N >= 200 "
          "(min speedup {:.2f}x)".format(big))
    return 0


if __name__ == "__main__":
    sys.exit(main())
