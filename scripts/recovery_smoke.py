"""Recovery smoke gate: checkpoint, SIGKILL, resume, bit-identity.

Two layers, both of which must pass on a single-core CI runner:

1. **Process-level kill/resume** — for each protocol, launch
   ``repro bc --engine shard`` as a subprocess with checkpointing
   enabled, SIGKILL the whole process group mid-run (after the first
   snapshot lands), then ``repro resume <dir> --check`` and demand
   exit 0: the resumed run must be bit-identical to a fresh
   uninterrupted run (betweenness, rounds, bits, messages).
2. **In-process matrix** — a reduced ``benchmarks/bench_recovery.py``
   (resume identity + hang respawn + the N = 400 overhead row), written
   to ``BENCH_recovery.json`` at the repo root and appended to the
   run-history ledger, for ``repro bench compare`` gating.

Wall-clock figures are recorded but only identity/restart counts fail
this script: the overhead ceiling is a *soft* gate enforced by
``repro bench compare`` (and skipped entirely under ``--no-wall``).

Usage::

    python scripts/recovery_smoke.py       # ~2-3 min on a 1-core container
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from benchmarks.bench_recovery import (  # noqa: E402
    _print_rows,
    measure_overhead,
    measure_respawn,
    measure_resume,
    write_json,
)

KILL_GRAPH = "cycle:48"
KILL_PROTOCOLS = ("hua-bc", "cfp-bc")


def _cli(args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro"] + args,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        start_new_session=True,
        **kwargs,
    )


def kill_and_resume(protocol):
    """SIGKILL a checkpointing run mid-flight, resume it, check exit 0."""
    ckpt_root = tempfile.mkdtemp(prefix="recovery-smoke-")
    proc = _cli([
        "bc", "--graph", KILL_GRAPH, "--engine", "shard",
        "--workers", "3", "--protocol", protocol,
        "--checkpoint-every", "10", "--checkpoint-dir", ckpt_root,
    ])
    # Wait for the first durable snapshot (manifest.json is written
    # last, atomically — its presence proves a complete checkpoint).
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if list(Path(ckpt_root).glob("*/ckpt-*/manifest.json")):
            break
        if proc.poll() is not None:
            out = proc.stdout.read().decode(errors="replace")
            return "run exited (rc {}) before its first checkpoint:\n{}".format(
                proc.returncode, out
            )
        time.sleep(0.05)
    else:
        proc.kill()
        return "no checkpoint appeared within 120s"
    # Kill the whole process group: coordinator and workers die together,
    # exactly like a machine loss.
    os.killpg(proc.pid, signal.SIGKILL)
    proc.wait()
    resume = _cli(["resume", ckpt_root, "--check"])
    out, _ = resume.communicate(timeout=600)
    if resume.returncode != 0:
        return "resume --check exited {} for {}:\n{}".format(
            resume.returncode, protocol, out.decode(errors="replace")
        )
    return None


def main() -> int:
    failures = []

    for protocol in KILL_PROTOCOLS:
        error = kill_and_resume(protocol)
        if error:
            failures.append("kill/resume [{}]: {}".format(protocol, error))
        else:
            print(
                "kill/resume [{}]: resumed run bit-identical "
                "(exit 0)".format(protocol)
            )

    rows = measure_resume(sizes=(48,))
    rows += measure_respawn(n=48)
    overhead = measure_overhead()
    rows.append(overhead)
    payload = write_json(rows)
    _print_rows(rows, "recovery smoke -> BENCH_recovery.json")
    print("wrote {}".format(ROOT / "BENCH_recovery.json"))

    from repro.obs.history import (
        DEFAULT_HISTORY_PATH,
        HistoryLedger,
        git_revision,
    )

    ledger = HistoryLedger(ROOT / DEFAULT_HISTORY_PATH)
    rev = git_revision(str(ROOT))
    recorded = ledger.ingest_bench_recovery(payload, git_rev=rev)
    print(
        "ledger: {} entries appended to {} (rev {})".format(
            recorded, ledger.path, rev or "unknown"
        )
    )

    for row in rows:
        label = "{family}-{n}/{protocol} [{scenario}]".format(**row)
        if not row["identical_after_resume"]:
            failures.append(
                label + ": recovered run differs from uninterrupted run"
            )
        if row["scenario"].startswith("hang_respawn"):
            expected = int(row["scenario"][-1])
            if row["restarts"] != expected:
                failures.append(
                    label + ": {} restarts, expected {}".format(
                        row["restarts"], expected
                    )
                )
    if overhead["checkpoints_written"] < 2:
        failures.append(
            "overhead row wrote only {} checkpoint(s); the cadence no "
            "longer exercises the subsystem".format(
                overhead["checkpoints_written"]
            )
        )

    if failures:
        for line in failures:
            print("FAIL: " + line, file=sys.stderr)
        return 1
    print(
        "OK: {} recovery scenarios bit-identical; checkpoint overhead "
        "{:.1%} of the supervised run (soft ceiling 5%)".format(
            len(rows), overhead["overhead_fraction"]
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
