"""Sharded-runtime smoke gate.

Runs a reduced version of ``benchmarks/bench_shard.py`` — the identity
matrix at one small size with 2 and 4 workers plus the per-shard
ledger-split check — writes the same ``BENCH_shard.json`` artifact at
the repo root, appends it to the run-history ledger, and exits non-zero
if

* any sharded run disagrees with the event engine on any output
  (betweenness, rounds, billed bits, messages, per-round series,
  worst edge), or
* cross-shard traffic is not a strict subset of the billed totals, or
* any shard holds the entire ledger (the memory split did not happen).

Wall-clock is reported but never gated: this script must pass on a
single-core CI runner, where a multi-process runtime cannot beat the
single-process engine (see the ``timing_note`` in the payload).

Usage::

    python scripts/shard_smoke.py          # ~1 min on a 1-core container

The full benchmark (more sizes, both protocols, the N = 2000 memory
run) lives in ``benchmarks/bench_shard.py``.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from benchmarks.bench_shard import (  # noqa: E402
    _print_rows,
    measure,
    measure_memory_split,
    write_json,
)

SIZES = (100,)
WORKER_COUNTS = (2, 4)
MEMORY_N = 400


def main() -> int:
    rows = measure(sizes=SIZES, worker_counts=WORKER_COUNTS)
    memory = measure_memory_split(n=MEMORY_N)
    write_json(rows, memory=memory)
    _print_rows(rows, "shard smoke (W in {})".format(WORKER_COUNTS))
    print("wrote {}".format(ROOT / "BENCH_shard.json"))

    import json

    from repro.obs.history import (
        DEFAULT_HISTORY_PATH,
        HistoryLedger,
        git_revision,
    )

    ledger = HistoryLedger(ROOT / DEFAULT_HISTORY_PATH)
    rev = git_revision(str(ROOT))
    payload = json.loads((ROOT / "BENCH_shard.json").read_text())
    recorded = ledger.ingest_bench_shard(payload, git_rev=rev)
    print(
        "ledger: {} entries appended to {} (rev {})".format(
            recorded, ledger.path, rev or "unknown"
        )
    )

    failures = []
    for row in rows:
        label = "{family}-{n}/{protocol} W={workers}".format(**row)
        if not row["identical_results"]:
            failures.append(label + ": sharded run differs from event")
        if not 0 < row["cross_bits"] < row["bits"]:
            failures.append(
                label + ": cross-shard bits {} outside (0, {})".format(
                    row["cross_bits"], row["bits"]
                )
            )
        if row["max_shard_ledger_words"] >= row["total_ledger_words"]:
            failures.append(label + ": ledger did not split across shards")
    if memory["max_shard_fraction"] >= 0.5:
        failures.append(
            "memory split: one shard holds {:.0%} of the ledger".format(
                memory["max_shard_fraction"]
            )
        )
    if failures:
        for line in failures:
            print("FAIL: " + line, file=sys.stderr)
        return 1
    print(
        "OK: {} sharded runs bit-identical to event; max shard holds "
        "{:.0%} of the N={} ledger".format(
            len(rows), memory["max_shard_fraction"], memory["n"]
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
