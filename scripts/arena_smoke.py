"""Quick protocol-arena smoke gate.

Runs a reduced version of ``benchmarks/bench_arena.py`` — every
registered protocol over a small family × size grid on the event
engine — writes the same ``BENCH_arena.json`` artifact at the repo
root, ingests it into the run-history ledger, and exits non-zero if

* any protocol's output falls outside the Theorem 1 relative-error
  envelope against exact Brandes, or
* any two protocols disagree on a structural total (rounds, billed
  bits, messages) for the same instance — the league table's headline
  finding is that the rival accumulation schedule changes *when*
  traffic flows, never *how much*.

Usage::

    python scripts/arena_smoke.py          # ~15 s on a 1-core container

The full benchmark (larger sizes, pytest-benchmark integration) lives
in ``benchmarks/bench_arena.py``; this script exists so CI and humans
can get a pass/fail answer without the pytest machinery.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from benchmarks.bench_arena import (  # noqa: E402
    identical_totals,
    measure_arena,
    print_league_table,
    write_json,
)

SIZES = (24, 48)
REPS = 1


def main() -> int:
    rows = measure_arena(sizes=SIZES, reps=REPS)
    payload = write_json(rows)
    print_league_table(rows, "protocol arena smoke ({} reps)".format(REPS))
    print("wrote {}".format(ROOT / "BENCH_arena.json"))

    from repro.obs.history import (
        DEFAULT_HISTORY_PATH,
        HistoryLedger,
        git_revision,
    )

    ledger = HistoryLedger(ROOT / DEFAULT_HISTORY_PATH)
    recorded = ledger.ingest_bench_arena(
        payload, git_rev=git_revision(str(ROOT))
    )
    print("ledger: {} entries appended to {}".format(recorded, ledger.path))

    failures = []
    for row in rows:
        if not row["matches_brandes"]:
            failures.append(
                "{protocol} on {family}-{n}: max relative error "
                "{max_rel_error:.3e} exceeds the Theorem 1 envelope "
                "{theorem1_envelope:.3e}".format(**row)
            )
    if not identical_totals(rows):
        failures.append(
            "protocols disagree on structural totals for at least one "
            "instance (see the table above)"
        )
    if failures:
        for line in failures:
            print("FAIL: " + line, file=sys.stderr)
        return 1
    print(
        "OK: {} protocols x {} instances all inside the Theorem 1 "
        "envelope, structural totals identical".format(
            len(payload["protocols"]),
            len(rows) // max(1, len(payload["protocols"])),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
