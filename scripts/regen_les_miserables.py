"""Regenerate ``src/repro/graphs/datasets.py`` from networkx's copy.

The embedded Les Misérables data originates from D. E. Knuth's Stanford
GraphBase via networkx; this script re-extracts it so the embedded copy
can be audited/refreshed without trusting anyone's memory of 254 edges.

Usage::

    python scripts/regen_les_miserables.py > src/repro/graphs/datasets.py
"""

import sys


def main() -> None:
    import networkx as nx

    g = nx.les_miserables_graph()
    names = sorted(g.nodes())
    index = {n: i for i, n in enumerate(names)}
    edges = sorted(
        (min(index[u], index[v]), max(index[u], index[v]), d["weight"])
        for u, v, d in g.edges(data=True)
    )

    w = sys.stdout.write
    w('"""Embedded classic network datasets.\n\n')
    w("Data provenance:\n\n")
    w("* ``les_miserables_graph`` — D. E. Knuth, *The Stanford GraphBase*\n")
    w("  (1993): co-appearance network of characters in Victor Hugo's\n")
    w("  novel; 77 characters, 254 pairs, weights = number of chapters\n")
    w("  in which the pair co-appears.  The unweighted projection is the\n")
    w("  classic betweenness demo (Valjean towers over everyone); the\n")
    w("  weighted variant exercises the subdivision pipeline on real data.\n")
    w("\n")
    w("The larger embedded datasets live here to keep\n")
    w("``repro.graphs.generators`` readable; Zachary's karate club and the\n")
    w("Florentine families remain there for historical reasons.\n")
    w('"""\n\n')
    w("from __future__ import annotations\n\n")
    w("from typing import List, Tuple\n\n")
    w("from repro.graphs.graph import Graph\n")
    w("from repro.graphs.weighted import WeightedGraph\n\n")
    w("#: Character names, alphabetical; index = node id.\n")
    w("LES_MISERABLES_CHARACTERS: Tuple[str, ...] = (\n")
    for i in range(0, len(names), 4):
        w("    " + ", ".join('"%s"' % n for n in names[i:i + 4]) + ",\n")
    w(")\n\n")
    w("#: (u, v, chapters co-appearing) with u < v, sorted.\n")
    w("LES_MISERABLES_EDGES: Tuple[Tuple[int, int, int], ...] = (\n")
    for i in range(0, len(edges), 6):
        w("    " + ", ".join("(%d, %d, %d)" % e for e in edges[i:i + 6]) + ",\n")
    w(")\n\n\n")
    w("def les_miserables_graph() -> Tuple[Graph, List[str]]:\n")
    w('    """The unweighted co-appearance network: ``(graph, labels)``."""\n')
    w("    edges = [(u, v) for u, v, _w in LES_MISERABLES_EDGES]\n")
    w("    graph = Graph(\n")
    w('        len(LES_MISERABLES_CHARACTERS), edges, name="les-miserables"\n')
    w("    )\n")
    w("    return graph, list(LES_MISERABLES_CHARACTERS)\n\n\n")
    w("def les_miserables_weighted_graph() -> Tuple[WeightedGraph, List[str]]:\n")
    w('    """The weighted variant: weight = chapters co-appearing."""\n')
    w("    graph = WeightedGraph(\n")
    w("        len(LES_MISERABLES_CHARACTERS),\n")
    w("        LES_MISERABLES_EDGES,\n")
    w('        name="les-miserables-weighted",\n')
    w("    )\n")
    w("    return graph, list(LES_MISERABLES_CHARACTERS)\n")


if __name__ == "__main__":
    main()
