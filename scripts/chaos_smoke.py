"""Chaos smoke gate: recovery and determinism across seeds and plans.

Replays a small matrix of fault plans — drop, delay, transient crash —
across several seeds on both engines, and fails unless

* every recoverable plan recovers the exact fault-free betweenness
  (equal to Brandes, since the arithmetic is exact),
* the recovery is deterministic: both engines agree on the recovered
  values, the round count and every engine-independent fault counter,
* the unrecoverable plan (a permanent crash) terminates early with a
  completeness report naming the crashed node and a partial
  betweenness that matches a Brandes restricted to the surviving
  sources.

Usage::

    python scripts/chaos_smoke.py       # ~30 s on a 1-core container

This is the CI chaos job's entry point; the full differential suite
lives in ``tests/test_faults.py``.
"""

import sys
from collections import deque
from fractions import Fraction
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import (  # noqa: E402
    CrashWindow,
    FaultPlan,
    distributed_betweenness,
)
from repro.graphs import connected_erdos_renyi_graph, figure1_graph  # noqa: E402

SEEDS = (1, 2, 3, 4, 5)
ENGINES = ("sweep", "event")


def _plans(seed):
    return {
        "drop": FaultPlan(seed=seed, drop_rate=0.08),
        "delay": FaultPlan(seed=seed, delay_rate=0.15, max_delay=3),
        "crash-transient": FaultPlan(
            seed=seed, crashes=(CrashWindow(2, 10, 30),)
        ),
    }


def _brandes_subset(graph, sources):
    nodes = list(graph.nodes())
    acc = {v: Fraction(0) for v in nodes}
    for s in sources:
        dist = {s: 0}
        sigma = {v: Fraction(0) for v in nodes}
        sigma[s] = Fraction(1)
        order = []
        preds = {v: [] for v in nodes}
        queue = deque([s])
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in graph.neighbors(v):
                if w not in dist:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist.get(w) == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        delta = {v: Fraction(0) for v in nodes}
        for w in reversed(order):
            for v in preds[w]:
                delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
            if w != s:
                acc[w] += delta[w]
    return {v: value / 2 for v, value in acc.items()}


def _comparable(result):
    """Everything recovery determinism requires the engines to agree on."""
    counters = result.stats.faults.as_dict()
    counters.pop("crash_rounds")  # engine-dependent by design
    return (
        sorted(result.betweenness_exact.items()),
        result.rounds,
        counters,
    )


def main() -> int:
    failures = []
    graph = connected_erdos_renyi_graph(12, 0.3, seed=9)
    reference = distributed_betweenness(graph, arithmetic="exact")
    checked = 0

    for seed in SEEDS:
        for name, plan in _plans(seed).items():
            outcomes = {}
            for engine in ENGINES:
                result = distributed_betweenness(
                    graph,
                    arithmetic="exact",
                    engine=engine,
                    faults=plan,
                    resilient=True,
                )
                outcomes[engine] = _comparable(result)
                checked += 1
                if not result.completeness.complete:
                    failures.append(
                        "seed {} plan {} engine {}: did not recover".format(
                            seed, name, engine
                        )
                    )
                elif (
                    result.betweenness_exact != reference.betweenness_exact
                ):
                    failures.append(
                        "seed {} plan {} engine {}: recovered values "
                        "differ from Brandes".format(seed, name, engine)
                    )
            if outcomes["sweep"] != outcomes["event"]:
                failures.append(
                    "seed {} plan {}: engines disagree on the recovered "
                    "run".format(seed, name)
                )

    # Unrecoverable plan: early termination + honest partial result.
    fig = figure1_graph()
    partial = distributed_betweenness(
        fig,
        arithmetic="exact",
        faults=FaultPlan(seed=1, crashes=(CrashWindow(3, 40, None),)),
        resilient=True,
    )
    report = partial.completeness
    checked += 1
    if report.complete or report.crashed_nodes != (3,):
        failures.append("permanent crash: completeness report wrong")
    else:
        subset = _brandes_subset(fig, report.complete_sources)
        if any(
            partial.betweenness_exact[v] != subset[v] for v in fig.nodes()
        ):
            failures.append(
                "permanent crash: partial values diverge from the "
                "source-subset Brandes"
            )

    if failures:
        for line in failures:
            print("FAIL: " + line, file=sys.stderr)
        return 1
    print(
        "OK: {} chaos runs recovered exactly and deterministically; "
        "permanent crash degraded to an honest partial result".format(
            checked
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
