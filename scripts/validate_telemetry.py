#!/usr/bin/env python
"""Validate repro-metrics-v1 telemetry JSONL files.

Thin CLI over :mod:`repro.obs.schema` — the same validator the test
suite and the run-history ingester use.  Checks the event-kind
vocabulary, required keys and value types of every row; exits non-zero
on the first file with problems.

    PYTHONPATH=src python scripts/validate_telemetry.py run.jsonl
    PYTHONPATH=src python scripts/validate_telemetry.py --stream live.jsonl
    PYTHONPATH=src python scripts/validate_telemetry.py --allow-torn-tail crashed.jsonl

``--stream`` admits the streaming-only event kinds (``progress``
heartbeats) that live JSONL sinks interleave with the core rows.
``--allow-torn-tail`` tolerates one half-written trailing line — the
signature of a run killed mid-write — validating the complete rows.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate repro-metrics-v1 telemetry JSONL"
    )
    parser.add_argument("paths", nargs="+", metavar="JSONL")
    parser.add_argument(
        "--stream",
        action="store_true",
        help="admit streaming-only event kinds (progress heartbeats)",
    )
    parser.add_argument(
        "--allow-torn-tail",
        action="store_true",
        help="tolerate one half-written trailing line (crashed run)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print failures"
    )
    args = parser.parse_args(argv)

    from repro.obs.schema import load_jsonl_rows, validate_rows

    failures = 0
    for path in args.paths:
        try:
            if args.allow_torn_tail:
                rows, warnings = load_jsonl_rows(path, allow_partial=True)
                for warning in warnings:
                    print("{}: warning: {}".format(path, warning))
                problems = validate_rows(rows, stream=args.stream)
            else:
                with open(path, "r", encoding="utf-8") as fh:
                    text = fh.read()
                from repro.obs.schema import validate_jsonl_text

                rows, problems = validate_jsonl_text(text, stream=args.stream)
        except (OSError, ValueError) as err:
            print("{}: FAIL: {}".format(path, err))
            failures += 1
            continue
        if problems:
            failures += 1
            print("{}: FAIL ({} problem(s))".format(path, len(problems)))
            for problem in problems:
                print("  {}".format(problem))
        elif not args.quiet:
            print("{}: OK ({} rows)".format(path, len(rows)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
